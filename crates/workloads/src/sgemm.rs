//! `sgemm` — dense single-precision matrix multiply (Parboil).
//!
//! The classic shared-memory tiled GEMM: each 16x16 thread block computes a
//! C tile, streaming A and B tiles through shared memory with barriers
//! between the load and compute phases. Compute-dense with regular,
//! fully-coalesced global traffic — one of the two kernels the paper calls
//! out as profiting from block switching (Section 5.3: +13% on NVLink).

use crate::types::{BufferKind, BufferSpec, Preset, VaAlloc, Workload};
use gex_isa::asm::Asm;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{CmpKind, CmpType};
use gex_isa::reg::{Pred, Reg};
use gex_prng::Prng;

/// Tile edge (threads per block side).
const TILE: u64 = 16;

fn dims(preset: Preset) -> (u64, u64, u64) {
    // (m, n, k): C[m x n] = A[m x k] x B[k x n], with a deep K so each
    // block computes long enough to overlap its neighbours' migrations —
    // each band of block rows streams its own slice of A, and the grid
    // oversubscribes the 16-SM GPU.
    match preset {
        Preset::Test => (64, 32, 64),
        Preset::Bench => (320, 128, 512),
        Preset::Paper => (640, 128, 512),
    }
}

/// Build the `sgemm` workload: `C = A x B` with a tall `A`.
pub fn build(preset: Preset) -> Workload {
    let (m, n, k) = dims(preset);
    let mut va = VaAlloc::new();
    let a_base = va.alloc(m * k * 4);
    let b_base = va.alloc(k * n * 4);
    let c_base = va.alloc(m * n * 4);

    let mut asm = Asm::new();
    let (tx, ty, row, col) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let (addr, v, acc, kt) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let (soff, t0, t1) = (Reg(8), Reg(9), Reg(10));
    let p = Pred(0);

    asm.special(tx, gex_isa::reg::SpecialReg::TidX);
    asm.special(ty, gex_isa::reg::SpecialReg::TidY);
    // row = ctaid.y * TILE + ty, col = ctaid.x * TILE + tx
    asm.special(row, gex_isa::reg::SpecialReg::CtaIdY);
    asm.mad(row, row, TILE, ty);
    asm.special(col, gex_isa::reg::SpecialReg::CtaIdX);
    asm.mad(col, col, TILE, tx);
    asm.mov(acc, 0u64);
    asm.mov(kt, 0u64);
    // shared layout: tile A at 0, tile B at TILE*TILE*4
    asm.label("ktile");
    // shared[ty][tx] = A[row][kt*TILE + tx]
    asm.mad(t0, kt, TILE, tx); // k index
    asm.mad(addr, row, k, t0);
    asm.shl_imm(addr, addr, 2);
    asm.add(addr, addr, a_base);
    asm.ld_global_u32(v, addr, 0);
    asm.mad(soff, ty, TILE, tx);
    asm.shl_imm(soff, soff, 2);
    asm.st_shared_u32(soff, v, 0);
    // sharedB[ty][tx] = B[kt*TILE + ty][col]
    asm.mad(t0, kt, TILE, ty);
    asm.mad(addr, t0, n, col);
    asm.shl_imm(addr, addr, 2);
    asm.add(addr, addr, b_base);
    asm.ld_global_u32(v, addr, 0);
    asm.st_shared_u32(soff, v, (TILE * TILE * 4) as i64);
    asm.bar();
    // acc += sum_i sharedA[ty][i] * sharedB[i][tx]
    for i in 0..TILE {
        asm.mad(t0, ty, TILE, i);
        asm.shl_imm(t0, t0, 2);
        asm.ld_shared_u32(t0, t0, 0);
        asm.mad(t1, i, TILE, tx);
        asm.shl_imm(t1, t1, 2);
        asm.ld_shared_u32(t1, t1, (TILE * TILE * 4) as i64);
        asm.ffma(acc, t0, t1, acc);
    }
    asm.bar();
    asm.add(kt, kt, 1u64);
    asm.setp(p, CmpKind::Lt, CmpType::U64, kt, k / TILE);
    asm.bra_if("ktile", p, true);
    // C[row][col] = acc
    asm.mad(addr, row, n, col);
    asm.shl_imm(addr, addr, 2);
    asm.add(addr, addr, c_base);
    asm.st_global_u32(addr, acc, 0);
    asm.exit();

    let kernel = KernelBuilder::new("sgemm", asm.assemble().expect("sgemm assembles"))
        .grid(Dim3::xy((n / TILE) as u32, (m / TILE) as u32))
        .block(Dim3::xy(TILE as u32, TILE as u32))
        .regs_per_thread(28)
        .shared_bytes((2 * TILE * TILE * 4) as u32)
        .build()
        .expect("sgemm kernel");

    let mut image = MemImage::new();
    let mut rng = Prng::seed_from_u64(0x5135);
    for i in 0..m * k {
        image.write_f32(a_base + i * 4, rng.gen_range(-1.0f32..1.0));
    }
    for i in 0..k * n {
        image.write_f32(b_base + i * 4, rng.gen_range(-1.0f32..1.0));
    }

    Workload::build(
        "sgemm",
        &kernel,
        image,
        vec![
            BufferSpec { name: "A", addr: a_base, len: m * k * 4, kind: BufferKind::Input },
            BufferSpec { name: "B", addr: b_base, len: k * n * 4, kind: BufferKind::Input },
            BufferSpec { name: "C", addr: c_base, len: m * n * 4, kind: BufferKind::Output },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_synchronizes() {
        let w = build(Preset::Test);
        assert_eq!(w.name, "sgemm");
        assert!(w.func.barriers > 0, "tiled gemm must barrier");
        assert!(w.func.shared_accesses > 0);
        assert!(w.func.global_loads > 0 && w.func.global_stores > 0);
        // (32/16) x (64/16) grid of blocks.
        assert_eq!(w.trace.blocks.len(), 8);
        assert_eq!(w.trace.warps_per_block, 8);
    }

    #[test]
    fn compute_dense_mix() {
        let w = build(Preset::Test);
        // FFMAs dominate global accesses (TILE multiplies per element pair
        // loaded).
        let mem = w.func.global_loads + w.func.global_stores;
        assert!(
            w.func.dyn_instrs > mem * 10,
            "sgemm should be compute-dense: {} instrs vs {} mem",
            w.func.dyn_instrs,
            mem
        );
    }
}
