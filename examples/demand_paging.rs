//! Use case 1 (Section 4.1): hide page-migration latency by context
//! switching faulted thread blocks.
//!
//! Runs `sgemm` with all data initially in CPU memory, comparing demand
//! paging without switching against the local-scheduler variants, over
//! both interconnects.
//!
//! ```text
//! cargo run --release -p gex --example demand_paging
//! ```

use gex::workloads::{suite, Preset};
use gex::{BlockSwitchConfig, Gpu, GpuConfig, Interconnect, PagingMode, Scheme};

fn main() {
    let w = suite::by_name("sgemm", Preset::Bench).expect("sgemm exists");
    let res = w.demand_residency();
    println!(
        "sgemm: {} blocks, {} KB of CPU-resident input to migrate on demand",
        w.trace.blocks.len(),
        w.input_bytes() / 1024
    );

    for ic in [Interconnect::nvlink(), Interconnect::pcie()] {
        let cfg = GpuConfig::kepler_k20();
        let plain = Gpu::new(cfg.clone(), Scheme::ReplayQueue, PagingMode::demand(ic))
            .run(&w.trace, &res);
        let switching = Gpu::new(
            cfg.clone(),
            Scheme::ReplayQueue,
            PagingMode::Demand {
                interconnect: ic,
                block_switch: Some(BlockSwitchConfig::default()),
                local_handling: None,
            },
        )
        .run(&w.trace, &res);
        let ideal = Gpu::new(
            cfg,
            Scheme::ReplayQueue,
            PagingMode::Demand {
                interconnect: ic,
                block_switch: Some(BlockSwitchConfig::ideal()),
                local_handling: None,
            },
        )
        .run(&w.trace, &res);

        println!("\n{ic}:");
        println!(
            "  no switching     {:>9} cycles   ({} migrations, mean fault latency {:.1} us)",
            plain.cycles,
            plain.cpu.migrations,
            plain.cpu.mean_latency() / 1000.0
        );
        println!(
            "  block switching  {:>9} cycles   speedup {:.3} ({} switches)",
            switching.cycles,
            plain.cycles as f64 / switching.cycles as f64,
            switching.switches
        );
        println!(
            "  ideal switching  {:>9} cycles   speedup {:.3}",
            ideal.cycles,
            plain.cycles as f64 / ideal.cycles as f64
        );
    }
    println!(
        "\npaper: sgemm gains ~13% on NVLink (Figure 12). At simulation scale the\n\
         gains are larger, and PCIe's longer round trips leave even more latency\n\
         for the local scheduler to hide."
    );
}
