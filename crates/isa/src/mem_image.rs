//! Sparse byte-addressable memory image used by the functional simulator.

use crate::PAGE_BYTES;
use std::collections::HashMap;

/// Default base of the device-side heap VA region (`malloc` intrinsic).
pub const HEAP_BASE: u64 = 0x8000_0000;

/// Default size of the device-side heap VA region.
pub const HEAP_SIZE: u64 = 0x4000_0000; // 1 GiB of VA

/// A sparse memory image: 4 KB pages materialized on first touch.
///
/// Reads of untouched memory return zero, matching freshly allocated GPU
/// memory in the functional model. The image also tracks the device-heap
/// break pointer used by the `malloc` intrinsic.
#[derive(Debug, Clone, Default)]
pub struct MemImage {
    pages: HashMap<u64, Box<[u8]>>,
    heap_brk: u64,
    heap_base: u64,
    heap_limit: u64,
}

impl MemImage {
    /// An empty image with the default heap region.
    pub fn new() -> Self {
        MemImage {
            pages: HashMap::new(),
            heap_brk: HEAP_BASE,
            heap_base: HEAP_BASE,
            heap_limit: HEAP_BASE + HEAP_SIZE,
        }
    }

    /// An empty image with a custom heap VA region.
    pub fn with_heap(base: u64, size: u64) -> Self {
        MemImage { pages: HashMap::new(), heap_brk: base, heap_base: base, heap_limit: base + size }
    }

    fn page_mut(&mut self, page: u64) -> &mut [u8] {
        self.pages.entry(page).or_insert_with(|| vec![0u8; PAGE_BYTES as usize].into_boxed_slice())
    }

    /// Read `n` bytes (`n <= 8`) at `addr`, little-endian, zero-extended.
    pub fn read(&self, addr: u64, n: u64) -> u64 {
        debug_assert!(n <= 8);
        let mut out = 0u64;
        for i in 0..n {
            let a = addr + i;
            let byte = self
                .pages
                .get(&crate::page_of(a))
                .map_or(0, |p| p[(a & (PAGE_BYTES - 1)) as usize]);
            out |= (byte as u64) << (8 * i);
        }
        out
    }

    /// Write the low `n` bytes (`n <= 8`) of `val` at `addr`, little-endian.
    pub fn write(&mut self, addr: u64, n: u64, val: u64) {
        debug_assert!(n <= 8);
        for i in 0..n {
            let a = addr + i;
            let page = self.page_mut(crate::page_of(a));
            page[(a & (PAGE_BYTES - 1)) as usize] = (val >> (8 * i)) as u8;
        }
    }

    /// Read a `u32` at `addr`.
    pub fn read_u32(&self, addr: u64) -> u32 {
        self.read(addr, 4) as u32
    }

    /// Write a `u32` at `addr`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write(addr, 4, v as u64);
    }

    /// Read a `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        self.read(addr, 8)
    }

    /// Write a `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, 8, v);
    }

    /// Read an `f32` at `addr`.
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Write an `f32` at `addr`.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Bump-allocate `size` bytes on the device heap (16-byte aligned).
    /// Returns the allocation base, or `None` if the heap is exhausted.
    pub fn heap_alloc(&mut self, size: u64) -> Option<u64> {
        let aligned = size.max(1).div_ceil(16) * 16;
        if self.heap_brk + aligned > self.heap_limit {
            return None;
        }
        let base = self.heap_brk;
        self.heap_brk += aligned;
        Some(base)
    }

    /// Current heap break (first unallocated heap byte).
    pub fn heap_brk(&self) -> u64 {
        self.heap_brk
    }

    /// Base of the heap VA region.
    pub fn heap_base(&self) -> u64 {
        self.heap_base
    }

    /// Pages materialized so far (sorted).
    pub fn touched_pages(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self.pages.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Total bytes backed by materialized pages.
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_BYTES
    }

    /// FNV-1a digest over the image contents (pages visited in address
    /// order, heap break included). Two images with identical bytes and
    /// heap state produce identical digests, so differential tests can
    /// compare final memory images without materializing byte dumps.
    pub fn digest(&self) -> u64 {
        fn mix(h: &mut u64, bytes: &[u8]) {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        mix(&mut h, &self.heap_brk.to_le_bytes());
        for page in self.touched_pages() {
            mix(&mut h, &page.to_le_bytes());
            mix(&mut h, &self.pages[&page]);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_round_trip() {
        let mut m = MemImage::new();
        assert_eq!(m.read_u64(0x1234), 0);
        m.write_u32(0x1000, 0xdead_beef);
        assert_eq!(m.read_u32(0x1000), 0xdead_beef);
        assert_eq!(m.read(0x1000, 2), 0xbeef);
        m.write_f32(0x2000, 1.5);
        assert_eq!(m.read_f32(0x2000), 1.5);
    }

    #[test]
    fn cross_page_access() {
        let mut m = MemImage::new();
        let addr = PAGE_BYTES - 2; // straddles pages 0 and 1
        m.write_u32(addr, 0xa1b2_c3d4);
        assert_eq!(m.read_u32(addr), 0xa1b2_c3d4);
        assert_eq!(m.touched_pages(), vec![0, PAGE_BYTES]);
    }

    #[test]
    fn heap_alloc_bumps_aligned() {
        let mut m = MemImage::new();
        let a = m.heap_alloc(10).unwrap();
        let b = m.heap_alloc(1).unwrap();
        assert_eq!(a, HEAP_BASE);
        assert_eq!(b, HEAP_BASE + 16);
        assert_eq!(m.heap_brk(), HEAP_BASE + 32);
    }

    #[test]
    fn digest_tracks_content() {
        let mut a = MemImage::new();
        let mut b = MemImage::new();
        a.write_u32(0x1000, 7);
        b.write_u32(0x1000, 7);
        assert_eq!(a.digest(), b.digest());
        b.write_u32(0x1000, 8);
        assert_ne!(a.digest(), b.digest());
        // Heap state is part of the digest.
        let mut c = MemImage::new();
        c.write_u32(0x1000, 7);
        c.heap_alloc(16);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn heap_exhaustion() {
        let mut m = MemImage::with_heap(0x1000, 32);
        assert!(m.heap_alloc(16).is_some());
        assert!(m.heap_alloc(16).is_some());
        assert!(m.heap_alloc(1).is_none());
    }
}
