//! Suite registries.

use crate::types::{Preset, Workload};

/// The eleven Parboil-like benchmarks, in the paper's figure order.
pub fn parboil(preset: Preset) -> Vec<Workload> {
    vec![
        crate::bfs::build(preset),
        crate::cutcp::build(preset),
        crate::histo::build(preset),
        crate::lbm::build(preset),
        crate::mri_gridding::build(preset),
        crate::mri_q::build(preset),
        crate::sad::build(preset),
        crate::sgemm::build(preset),
        crate::spmv::build(preset),
        crate::stencil::build(preset),
        crate::tpacf::build(preset),
    ]
}

/// The Halloc-style allocator benchmarks plus the quad-tree sample — the
/// Figure 13 set.
pub fn halloc(preset: Preset) -> Vec<Workload> {
    let mut v = crate::halloc::all(preset);
    v.push(crate::quadtree::build(preset));
    v
}

/// Build one workload by its paper name, searching every suite.
pub fn by_name(name: &str, preset: Preset) -> Option<Workload> {
    parboil(preset)
        .into_iter()
        .chain(halloc(preset))
        .find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_the_paper() {
        let ws = parboil(Preset::Test);
        assert_eq!(ws.len(), 11, "all Parboil benchmarks (Section 5.1)");
        let names: Vec<&str> = ws.iter().map(|w| w.name.as_str()).collect();
        for expected in [
            "bfs", "cutcp", "histo", "lbm", "mri-gridding", "mri-q", "sad", "sgemm", "spmv",
            "stencil", "tpacf",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        assert_eq!(halloc(Preset::Test).len(), 5, "4 halloc benchmarks + quad-tree");
        assert!(by_name("quad-tree", Preset::Test).is_some());
        assert!(by_name("nope", Preset::Test).is_none());
    }

    #[test]
    fn every_workload_has_coverage_and_work() {
        for w in parboil(Preset::Test).into_iter().chain(halloc(Preset::Test)) {
            assert!(w.trace.dyn_instrs() > 200, "{} too small", w.name);
            assert!(!w.trace.blocks.is_empty(), "{}", w.name);
            // every touched page is covered by the demand residency
            use gex_mem::system::{FaultMode, MemSystem};
            use gex_mem::{MemConfig, PageState};
            let mut mem =
                MemSystem::new(MemConfig::kepler_k20().with_sms(1), FaultMode::SquashNotify);
            w.demand_residency().apply(&mut mem, 0);
            for &page in w.trace.touched_pages() {
                assert_ne!(
                    mem.page_table.state(page),
                    PageState::Invalid,
                    "{}: page {page:#x} uncovered",
                    w.name
                );
            }
        }
    }
}
