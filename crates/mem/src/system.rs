//! The whole memory hierarchy as one event-driven model.
//!
//! [`MemSystem`] owns the per-SM L1 caches and L1 TLBs, the shared L2 cache
//! and L2 TLB, the fill unit (page-table walker pool plus the global
//! pending-fault queue), the DRAM channel and the GPU page table. SMs
//! interact with it through warp-level *accesses*:
//!
//! 1. [`MemSystem::start_access`] submits the coalesced line requests of a
//!    global-memory warp instruction (one request per unique 128 B line,
//!    injected at one per cycle — the coalescer/LDST throughput).
//! 2. Each request translates (L1 TLB -> L2 TLB -> walker) and then
//!    accesses the data hierarchy (L1 -> L2 -> DRAM, with MSHR merging and
//!    capacity stalls).
//! 3. The SM drains [`AccessEvent`]s: **`LastTlbCheck`** when the final
//!    request passed translation (paper Figure 5 — the earliest point the
//!    instruction is guaranteed not to fault), **`Fault`** when translation
//!    found unmapped pages (preemptible schemes squash and later replay the
//!    instruction), and **`Data`** when all requests completed (the commit
//!    point).
//!
//! The [`FaultMode`] chooses between the baseline behaviour — faulted
//! requests stall inside the fill unit and replay transparently once the
//! page arrives ("treated as a very long TLB miss", Section 2.2) — and the
//! squash-and-notify behaviour required by the paper's preemptible-fault
//! schemes.

use crate::config::{Cycle, MemConfig};
use crate::dram::Dram;
use crate::fault::{FaultKind, FaultQueue};
use crate::large::{frame_of, LpStats, PageSizePolicy, COALESCE_CYCLES, REGIONS_PER_LARGE};
use crate::mshr::{MshrAlloc, MshrTable};
use crate::page_table::{region_of, PageState, PageTable, REGION_BYTES};
use crate::setassoc::SetAssoc;
use crate::tlb::{Tlb, TlbSizeStats};
use gex_isa::{page_of, LINE_BYTES};
use std::collections::{BTreeMap, BinaryHeap, HashMap};

/// Identifies one in-flight warp access; unique while the access is live.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessToken {
    idx: u32,
    gen: u32,
}

/// Notifications delivered to the issuing SM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AccessEvent {
    /// Every request of the access passed its TLB check: the instruction
    /// can no longer fault.
    LastTlbCheck {
        /// The access.
        token: AccessToken,
    },
    /// Translation discovered unmapped pages (squash mode only). The access
    /// is dead; the SM must squash the instruction and replay it after the
    /// listed pages' regions are resolved.
    Fault {
        /// The access.
        token: AccessToken,
        /// Faulted page addresses.
        pages: Vec<u64>,
        /// Position of the (first) faulted region in the global pending
        /// fault queue when the fault completed — the local scheduler's
        /// context-switch signal (Section 4.1).
        queue_pos: u32,
    },
    /// All requests completed: loads have data, stores are accepted. The
    /// instruction may commit.
    Data {
        /// The access.
        token: AccessToken,
    },
}

impl AccessEvent {
    /// The access this event belongs to.
    pub fn token(&self) -> AccessToken {
        match self {
            AccessEvent::LastTlbCheck { token }
            | AccessEvent::Fault { token, .. }
            | AccessEvent::Data { token } => *token,
        }
    }
}

/// Fatal memory-system conditions. The hierarchy records the first one it
/// hits instead of panicking mid-event; the driving simulator picks it up
/// via [`MemSystem::take_error`] and aborts the run with a structured
/// report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemError {
    /// A translation reached a page no registered buffer covers: the
    /// workload touched memory outside every mapping the launch declared.
    InvalidPage {
        /// The unbacked page address.
        page: u64,
        /// SM whose access walked into it (first waiter).
        sm: u32,
    },
}

impl std::fmt::Display for MemError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemError::InvalidPage { page, sm } => write!(
                f,
                "access to invalid page {page:#x} from SM {sm}: the workload touched \
                 memory outside every registered buffer"
            ),
        }
    }
}

impl std::error::Error for MemError {}

/// What happens when translation faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Baseline: the faulted request parks in the fill unit and replays
    /// transparently when the page is mapped. The SM sees only a very slow
    /// access — and can never preempt the instruction.
    StallReplay,
    /// Preemptible schemes: the access dies with a [`AccessEvent::Fault`]
    /// notification so the SM can squash and later replay the instruction.
    SquashNotify,
}

/// Kind of data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read: completes when data returns from the hierarchy.
    Load,
    /// Write: completes when accepted by the L2 (write-through, no
    /// L1 allocate).
    Store,
    /// Read-modify-write at the L2: completes after the L2 (plus DRAM on an
    /// L2 miss).
    Atomic,
}

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Warp accesses started.
    pub accesses: u64,
    /// Line requests injected.
    pub requests: u64,
    /// L1 data hits / misses.
    pub l1_hits: u64,
    /// L1 data misses.
    pub l1_misses: u64,
    /// L2 data hits.
    pub l2_hits: u64,
    /// L2 data misses.
    pub l2_misses: u64,
    /// Page-table walks performed.
    pub walks: u64,
    /// Requests that faulted at translation.
    pub faulted_requests: u64,
    /// Accesses that died with a fault notification.
    pub faulted_accesses: u64,
    /// Retries caused by full MSHR tables.
    pub mshr_retries: u64,
    /// Requests refused admission to the fault queue because the owning
    /// tenant's fault budget was exhausted (always 0 without budgets).
    pub denied_requests: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    StartTranslate(u32),
    L2TlbLookup(u32),
    TransOk(u32),
    WalkDone(u64),
    DataRetry(u32),
    L2Lookup { line: u64, sm: u32 },
    L2Resp { line: u64, sm: u32 },
    DramReady { line: u64 },
    LineDone(u32),
    /// A background coalesce pass on this 2 MB frame settles. Fired only
    /// under large-page policies; cancelled passes leave the event in the
    /// heap (lazy invalidation — the handler revalidates against the
    /// pending map) so the push-wake contract never loses a wake.
    CoalesceDone(u64),
}

#[derive(Debug)]
struct Access {
    gen: u32,
    sm: u32,
    kind: AccessKind,
    /// Requests whose translation has not concluded (ok or fault).
    pending_checks: u32,
    /// Requests in the data phase.
    pending_data: u32,
    /// Requests not yet fully retired (slot recycling guard).
    outstanding: u32,
    faulted_pages: Vec<u64>,
    /// Terminal event emitted (Fault or Data).
    done: bool,
}

#[derive(Debug, Clone, Copy)]
struct Req {
    access: u32,
    line: u64,
    dead: bool,
    retired: bool,
}

#[derive(Debug)]
struct Cache {
    tags: SetAssoc,
    mshr: MshrTable,
    latency: Cycle,
}

impl Cache {
    fn new(cfg: &crate::config::CacheConfig) -> Self {
        Cache {
            tags: SetAssoc::new(cfg.sets(), cfg.ways),
            mshr: MshrTable::new(cfg.mshrs),
            latency: cfg.latency,
        }
    }
}


/// Tag for the data caches: the line number (addresses are 128 B aligned,
/// so the raw address would alias every line into set 0).
#[inline]
fn line_tag(line: u64) -> u64 {
    line >> 7
}

/// Tag for the TLBs: the virtual page number.
#[inline]
fn page_tag(page: u64) -> u64 {
    page >> 12
}

/// Tag for the large TLB side: the 2 MB frame number.
#[inline]
fn frame_tag(addr: u64) -> u64 {
    addr >> 21
}

/// Runtime state of the large-page machinery; present only when the
/// configured [`PageSizePolicy`] uses large pages, so `Small` runs never
/// touch any of it.
#[derive(Debug)]
struct LpState {
    /// Whether the background coalescer may promote (Transparent with
    /// coalescing on). `HugeOnly` promotes synchronously on the fault
    /// path and ignores this.
    coalesce_enabled: bool,
    /// Frames with a coalesce pass in flight -> the pass's settle cycle.
    /// Shootdowns cancel a pass by removing its entry; the settle event
    /// revalidates against this map.
    pending: BTreeMap<u64, Cycle>,
    /// Faults that walked into a frame mid-pass, held until the pass
    /// settles: frame -> (page, walk waiters).
    held: HashMap<u64, Vec<(u64, Vec<u64>)>>,
    stats: LpStats,
}

/// The memory hierarchy. See the [module docs](self).
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    fault_mode: FaultMode,
    l1: Vec<Cache>,
    l2: Cache,
    l1_tlb: Vec<Tlb>,
    l2_tlb: Tlb,
    l2_tlb_mshr: MshrTable,
    walkers_active: u32,
    walk_queue: std::collections::VecDeque<u64>,
    dram: Dram,
    /// The GPU page table (public: the paging engine mutates it directly).
    pub page_table: PageTable,
    /// The fill unit's pending fault queue (public: handlers drain it).
    pub fault_queue: FaultQueue,
    events: BinaryHeap<std::cmp::Reverse<(Cycle, u64, Ev)>>,
    seq: u64,
    accesses: Vec<Access>,
    free_accesses: Vec<u32>,
    reqs: Vec<Req>,
    free_reqs: Vec<u32>,
    outbox: Vec<Vec<AccessEvent>>,
    /// Set whenever the internal event heap changes shape (a schedule or
    /// a pop); cleared by [`MemSystem::take_wake_update`]. Keeps the push
    /// wake path O(1) on quiet queries.
    wake_dirty: bool,
    wake_memo: crate::wake::WakeMemo,
    /// Stall-mode: faulted requests parked per 64 KB region.
    parked: HashMap<u64, Vec<u32>>,
    stats: MemStats,
    /// True once [`MemSystem::set_tenant_shift`] ran: per-tenant request
    /// counters update on the fault path. Off (the default) the counters
    /// stay empty and the fault path pays nothing.
    tenant_accounting: bool,
    /// Per-tenant `(faulted_requests, denied_requests)`.
    tenant_fault_counts: BTreeMap<u32, (u64, u64)>,
    /// Large-page machinery; `None` under [`PageSizePolicy::Small`], so
    /// the 4 KB-only paths execute byte-identically to the pre-large-page
    /// simulator.
    lp: Option<LpState>,
    /// First fatal condition hit (the hierarchy stops making progress on
    /// the affected requests; the simulator must abort the run).
    error: Option<MemError>,
}

impl MemSystem {
    /// Build the hierarchy for `cfg` with the given fault behaviour.
    pub fn new(cfg: MemConfig, fault_mode: FaultMode) -> Self {
        let n = cfg.num_sms as usize;
        let mut l1_tlb: Vec<Tlb> = (0..n).map(|_| Tlb::new(&cfg.l1_tlb)).collect();
        let mut l2_tlb = Tlb::new(&cfg.l2_tlb);
        let lp = cfg.page_size.uses_large_pages().then(|| {
            for tlb in &mut l1_tlb {
                tlb.enable_large(&cfg.l1_tlb);
            }
            l2_tlb.enable_large(&cfg.l2_tlb);
            LpState {
                coalesce_enabled: cfg.coalesce && cfg.page_size == PageSizePolicy::Transparent,
                pending: BTreeMap::new(),
                held: HashMap::new(),
                stats: LpStats::default(),
            }
        });
        MemSystem {
            l1: (0..n).map(|_| Cache::new(&cfg.l1)).collect(),
            l2: Cache::new(&cfg.l2),
            l1_tlb,
            l2_tlb,
            l2_tlb_mshr: MshrTable::new(cfg.l2_tlb.mshrs),
            walkers_active: 0,
            walk_queue: std::collections::VecDeque::new(),
            dram: Dram::new(cfg.dram_latency, cfg.dram_bytes_per_cycle),
            page_table: PageTable::new(),
            fault_queue: FaultQueue::new(),
            events: BinaryHeap::new(),
            seq: 0,
            accesses: Vec::new(),
            free_accesses: Vec::new(),
            reqs: Vec::new(),
            free_reqs: Vec::new(),
            outbox: vec![Vec::new(); n],
            wake_dirty: true,
            wake_memo: crate::wake::WakeMemo::new(),
            parked: HashMap::new(),
            stats: MemStats::default(),
            tenant_accounting: false,
            tenant_fault_counts: BTreeMap::new(),
            error: None,
            lp,
            fault_mode,
            cfg,
        }
    }

    /// The configuration this system was built with.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// The first fatal condition hit, if any (without clearing it).
    pub fn error(&self) -> Option<&MemError> {
        self.error.as_ref()
    }

    /// Take the first fatal condition hit, if any. Once an error is
    /// recorded the affected requests make no further progress, so the
    /// caller should abort the run.
    pub fn take_error(&mut self) -> Option<MemError> {
        self.error.take()
    }

    /// Direct access to the DRAM channel (context-switch transfers share
    /// its bandwidth).
    pub fn dram_mut(&mut self) -> &mut Dram {
        &mut self.dram
    }

    /// Enable multi-tenant accounting: a virtual address belongs to the
    /// tenant in its high bits (`region >> shift` for the fault queue,
    /// equivalently `page >> shift` for the TLBs). Propagates the shift to
    /// the fault queue and every TLB so faults, denials, hits and misses
    /// are attributed per tenant.
    pub fn set_tenant_shift(&mut self, shift: u32) {
        self.tenant_accounting = true;
        self.fault_queue.set_tenant_shift(shift);
        for tlb in &mut self.l1_tlb {
            tlb.set_tenant_shift(shift);
        }
        self.l2_tlb.set_tenant_shift(shift);
    }

    /// Per-tenant fault-path request counters: `(faulted_requests,
    /// denied_requests)` attributed to `tenant`. All zero unless
    /// [`MemSystem::set_tenant_shift`] was called.
    pub fn tenant_fault_stats(&self, tenant: u32) -> (u64, u64) {
        self.tenant_fault_counts.get(&tenant).copied().unwrap_or((0, 0))
    }

    /// Per-tenant TLB accounting summed over the L1 TLBs and the L2 TLB:
    /// `(hits, misses)` attributed to `tenant`. All zero unless
    /// [`MemSystem::set_tenant_shift`] was called.
    pub fn tenant_tlb_stats(&self, tenant: u32) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for tlb in self.l1_tlb.iter().chain(std::iter::once(&self.l2_tlb)) {
            let (h, m) = tlb.tenant_stats(tenant);
            hits += h;
            misses += m;
        }
        (hits, misses)
    }

    fn schedule(&mut self, cycle: Cycle, ev: Ev) {
        self.seq += 1;
        self.wake_dirty = true;
        self.events.push(std::cmp::Reverse((cycle, self.seq, ev)));
    }

    /// The cycle of the earliest pending internal event, if any — lets the
    /// top-level simulator skip idle stretches.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.events.peek().map(|std::cmp::Reverse((c, _, _))| *c)
    }

    /// Push-mode wake hook: the current [`MemSystem::next_event_cycle`]
    /// when it changed since the last take, `None` otherwise. The caller
    /// pushes the returned cycle into its wake queue; the fast path (no
    /// schedule or pop since last take) is a single flag test.
    pub fn take_wake_update(&mut self) -> Option<Cycle> {
        if !self.wake_dirty {
            return None;
        }
        self.wake_dirty = false;
        let current = self.next_event_cycle();
        self.wake_memo.update(current)
    }

    /// True if no requests are in flight anywhere in the hierarchy.
    pub fn quiescent(&self) -> bool {
        self.events.is_empty()
            && self.parked.is_empty()
            && self.lp.as_ref().is_none_or(|lp| lp.held.is_empty())
    }

    /// Begin a warp access of `kind` touching the given unique cache lines,
    /// issued by SM `sm` at cycle `now`. Requests inject at one line per
    /// cycle starting next cycle.
    ///
    /// # Panics
    ///
    /// Panics if `lines` is empty — fully predicated-off accesses must not
    /// reach the memory system.
    pub fn start_access(
        &mut self,
        now: Cycle,
        sm: u32,
        kind: AccessKind,
        lines: &[u64],
    ) -> AccessToken {
        assert!(!lines.is_empty(), "access with no coalesced requests");
        let idx = if let Some(i) = self.free_accesses.pop() {
            let gen = self.accesses[i as usize].gen + 1;
            self.accesses[i as usize] = Access {
                gen,
                sm,
                kind,
                pending_checks: lines.len() as u32,
                pending_data: 0,
                outstanding: lines.len() as u32,
                faulted_pages: Vec::new(),
                done: false,
            };
            i
        } else {
            self.accesses.push(Access {
                gen: 0,
                sm,
                kind,
                pending_checks: lines.len() as u32,
                pending_data: 0,
                outstanding: lines.len() as u32,
                faulted_pages: Vec::new(),
                done: false,
            });
            (self.accesses.len() - 1) as u32
        };
        self.stats.accesses += 1;
        for (i, &line) in lines.iter().enumerate() {
            let r = self.alloc_req(Req { access: idx, line, dead: false, retired: false });
            self.stats.requests += 1;
            self.schedule(now + 1 + i as Cycle, Ev::StartTranslate(r));
        }
        AccessToken { idx, gen: self.accesses[idx as usize].gen }
    }

    fn alloc_req(&mut self, req: Req) -> u32 {
        if let Some(i) = self.free_reqs.pop() {
            self.reqs[i as usize] = req;
            i
        } else {
            self.reqs.push(req);
            (self.reqs.len() - 1) as u32
        }
    }

    /// Drain the pending notifications for SM `sm`.
    pub fn drain_events(&mut self, sm: u32) -> Vec<AccessEvent> {
        std::mem::take(&mut self.outbox[sm as usize])
    }

    /// Drain the pending notifications for SM `sm` into `buf` without
    /// allocating: `buf` is cleared and swapped with the outbox, so both
    /// vectors' capacities are recycled across ticks.
    pub fn drain_events_into(&mut self, sm: u32, buf: &mut Vec<AccessEvent>) {
        buf.clear();
        std::mem::swap(buf, &mut self.outbox[sm as usize]);
    }

    /// True if SM `sm` has undelivered events waiting in its outbox. Lets
    /// the engine skip ticking a stalled SM with nothing to deliver.
    pub fn has_pending_events(&self, sm: u32) -> bool {
        !self.outbox[sm as usize].is_empty()
    }

    /// Resolve the 64 KB region containing `addr`: map its pages and replay
    /// any requests parked on it (stall mode). The caller (the paging
    /// engine or a fault handler) invokes this when the fault service
    /// completes. Returns the number of pages newly mapped.
    pub fn resolve_region(&mut self, addr: u64, now: Cycle) -> u32 {
        let region = region_of(addr);
        let mapped = self.page_table.map_region(region, now);
        if let Some(parked) = self.parked.remove(&region) {
            for r in parked {
                let (sm, page) = {
                    let req = &self.reqs[r as usize];
                    (self.accesses[req.access as usize].sm, page_of(req.line))
                };
                self.l1_tlb[sm as usize].fill(page_tag(page));
                self.l2_tlb.fill(page_tag(page));
                self.schedule(now + 1, Ev::TransOk(r));
            }
        }
        self.fault_queue.finish_service(region);
        mapped
    }

    /// Invalidate every TLB entry of the 64 KB region containing `addr`
    /// (the shootdown an eviction requires under memory oversubscription).
    /// Under large-page policies this also drops any 2 MB entry covering
    /// the region and cancels a coalesce pass in flight on its frame — the
    /// eviction invalidated the pass's all-resident premise.
    pub fn shootdown_region(&mut self, addr: u64) {
        if let Some(lp) = &mut self.lp {
            let frame = frame_of(addr);
            if lp.pending.remove(&frame).is_some() {
                // Lazy cancellation: the settle event stays in the heap and
                // revalidates, so held faults still drain when it fires.
                lp.stats.cancelled += 1;
            }
            for tlb in &mut self.l1_tlb {
                tlb.invalidate_large(frame_tag(addr));
            }
            self.l2_tlb.invalidate_large(frame_tag(addr));
        }
        let base = region_of(addr);
        for i in 0..crate::page_table::REGION_PAGES {
            let tag = page_tag(base + i * 4096);
            for tlb in &mut self.l1_tlb {
                tlb.invalidate(tag);
            }
            self.l2_tlb.invalidate(tag);
        }
    }

    /// Notify the large-page machinery that a fault region was resolved:
    /// if the region's 2 MB frame is now fully resident, physically
    /// contiguous (`contiguous` — the caller asks the allocator) and not
    /// already promoted or mid-pass, schedule a background coalesce pass
    /// to settle [`COALESCE_CYCLES`] from now. No-op outside
    /// `Transparent`-with-coalescing runs.
    pub fn note_region_resolved(&mut self, region: u64, now: Cycle, contiguous: bool) {
        let frame = frame_of(region);
        let Some(lp) = &mut self.lp else {
            return;
        };
        if !lp.coalesce_enabled
            || !contiguous
            || lp.pending.contains_key(&frame)
            || self.page_table.large_mapped(frame)
            || !self.page_table.frame_fully_resident(frame)
        {
            return;
        }
        let due = now + COALESCE_CYCLES;
        lp.pending.insert(frame, due);
        lp.stats.passes += 1;
        self.schedule(due, Ev::CoalesceDone(frame));
    }

    /// A coalesce pass settles. If the pass is still the live one for its
    /// frame, promote (the all-resident premise was guarded by
    /// [`MemSystem::shootdown_region`] cancelling on eviction) and shoot
    /// down the now-stale 4 KB entries. Either way, faults held on the
    /// frame re-dispatch against the settled page table — held, never
    /// dropped.
    fn ev_coalesce_done(&mut self, t: Cycle, frame: u64) {
        let Some(lp) = &mut self.lp else {
            return;
        };
        match lp.pending.get(&frame).copied() {
            Some(due) if due == t => {
                lp.pending.remove(&frame);
                if self.page_table.try_coalesce(frame, t) {
                    if let Some(lp) = &mut self.lp {
                        lp.stats.coalesced += 1;
                    }
                    for tlb in &mut self.l1_tlb {
                        tlb.shootdown_frame(frame_tag(frame));
                    }
                    self.l2_tlb.shootdown_frame(frame_tag(frame));
                }
            }
            Some(_) => {
                // A newer pass owns the frame; this event is stale. Keep
                // holding — the newer pass's settle event drains the queue.
                return;
            }
            None => {
                // Cancelled pass: nothing to promote, but held faults must
                // still drain below.
            }
        }
        let held = self
            .lp
            .as_mut()
            .and_then(|lp| lp.held.remove(&frame))
            .unwrap_or_default();
        for (page, waiters) in held {
            self.finish_walk(t, page, waiters);
        }
    }

    /// Resolve the whole 2 MB frame containing `addr` — the `HugeOnly`
    /// fault path, where one fault maps all 32 regions at once. Pending
    /// queue entries for sibling regions are serviced by this same call.
    /// Returns every region this resolved (for the handler's wake list).
    /// With `promote` the frame is coalesced into one 2 MB mapping
    /// immediately (the handler sets it when the allocation stayed
    /// contiguous).
    pub fn resolve_frame(&mut self, addr: u64, now: Cycle, promote: bool) -> Vec<u64> {
        let frame = frame_of(addr);
        let mut resolved = Vec::new();
        for i in 0..REGIONS_PER_LARGE {
            let region = frame + i * REGION_BYTES;
            let was_pending = self.fault_queue.remove(region).is_some();
            let was_parked = self.parked.contains_key(&region);
            let mapped = self.resolve_region(region, now);
            if mapped > 0 || was_pending || was_parked {
                resolved.push(region);
            }
        }
        if promote && self.page_table.try_coalesce(frame, now) {
            if let Some(lp) = &mut self.lp {
                lp.stats.coalesced += 1;
            }
            for tlb in &mut self.l1_tlb {
                tlb.shootdown_frame(frame_tag(frame));
            }
            self.l2_tlb.shootdown_frame(frame_tag(frame));
        }
        resolved
    }

    /// Demote the 2 MB mapping covering `addr` back to 4 KB pages (a
    /// write fault inside the large page, or a neighbor's pressure). The
    /// subpages stay present — SMs are never stalled; their next accesses
    /// simply re-walk and refill at 4 KB. Returns whether a mapping was
    /// splintered.
    pub fn splinter_frame(&mut self, addr: u64, _now: Cycle) -> bool {
        let frame = frame_of(addr);
        if !self.page_table.splinter(frame) {
            return false;
        }
        if let Some(lp) = &mut self.lp {
            lp.stats.splintered += 1;
        }
        for tlb in &mut self.l1_tlb {
            tlb.shootdown_frame(frame_tag(frame));
        }
        self.l2_tlb.shootdown_frame(frame_tag(frame));
        true
    }

    /// Large-page counters, combined with the page table's promote /
    /// demote totals (which also count evictions' implicit splinters).
    pub fn lp_stats(&self) -> LpStats {
        let mut s = self.lp.as_ref().map(|lp| lp.stats).unwrap_or_default();
        s.coalesced = self.page_table.coalesced_frames();
        s.splintered = self.page_table.splintered_frames();
        s
    }

    /// Per-size TLB counters summed over the L1 TLBs and the L2 TLB (all
    /// zero under `PageSizePolicy::Small`).
    pub fn tlb_size_stats(&self) -> TlbSizeStats {
        let mut total = TlbSizeStats::default();
        for tlb in self.l1_tlb.iter().chain(std::iter::once(&self.l2_tlb)) {
            let s = tlb.size_stats();
            total.small_hits += s.small_hits;
            total.small_misses += s.small_misses;
            total.large_hits += s.large_hits;
            total.large_misses += s.large_misses;
        }
        total
    }

    /// Advance the hierarchy to cycle `now`, processing every event due at
    /// or before it.
    pub fn tick(&mut self, now: Cycle) {
        while let Some(std::cmp::Reverse((c, _, _))) = self.events.peek() {
            if *c > now {
                break;
            }
            let std::cmp::Reverse((t, _, ev)) = self.events.pop().expect("peeked event");
            self.wake_dirty = true;
            self.dispatch(t, ev);
        }
    }

    fn dispatch(&mut self, t: Cycle, ev: Ev) {
        match ev {
            Ev::StartTranslate(r) => self.ev_start_translate(t, r),
            Ev::L2TlbLookup(r) => self.ev_l2_tlb_lookup(t, r),
            Ev::TransOk(r) => self.ev_trans_ok(t, r),
            Ev::WalkDone(page) => self.ev_walk_done(t, page),
            Ev::DataRetry(r) => self.ev_data_phase(t, r),
            Ev::L2Lookup { line, sm } => self.ev_l2_lookup(t, line, sm),
            Ev::L2Resp { line, sm } => self.ev_l2_resp(t, line, sm),
            Ev::DramReady { line } => self.ev_dram_ready(t, line),
            Ev::LineDone(r) => self.ev_line_done(t, r),
            Ev::CoalesceDone(frame) => self.ev_coalesce_done(t, frame),
        }
    }

    // ------------------------------------------------------- translation

    fn ev_start_translate(&mut self, t: Cycle, r: u32) {
        let req = self.reqs[r as usize];
        if req.dead {
            self.retire_req(r);
            return;
        }
        let sm = self.accesses[req.access as usize].sm;
        let page = page_of(req.line);
        let lat = self.cfg.l1_tlb.latency;
        let hit = if self.lp.is_some() {
            self.l1_tlb[sm as usize].lookup_dual(page_tag(page))
        } else {
            self.l1_tlb[sm as usize].lookup(page_tag(page))
        };
        if hit {
            self.schedule(t + lat, Ev::TransOk(r));
        } else {
            self.schedule(t + lat, Ev::L2TlbLookup(r));
        }
    }

    fn ev_l2_tlb_lookup(&mut self, t: Cycle, r: u32) {
        let req = self.reqs[r as usize];
        if req.dead {
            self.retire_req(r);
            return;
        }
        let sm = self.accesses[req.access as usize].sm;
        let page = page_of(req.line);
        let hit = if self.lp.is_some() {
            let hit = self.l2_tlb.lookup_dual(page_tag(page));
            if hit {
                // Propagate at matching size: a large L2 entry fills the
                // L1's large side, a small one the 4 KB side.
                if self.l2_tlb.has_large(frame_tag(page)) {
                    self.l1_tlb[sm as usize].fill_large(frame_tag(page));
                } else {
                    self.l1_tlb[sm as usize].fill(page_tag(page));
                }
            }
            hit
        } else {
            let hit = self.l2_tlb.lookup(page_tag(page));
            if hit {
                self.l1_tlb[sm as usize].fill(page_tag(page));
            }
            hit
        };
        if hit {
            self.schedule(t + self.cfg.l2_tlb.latency, Ev::TransOk(r));
            return;
        }
        match self.l2_tlb_mshr.allocate(page, r as u64) {
            MshrAlloc::Primary => {
                // The L2 TLB lookup latency applies before the walk starts.
                self.submit_walk(t + self.cfg.l2_tlb.latency, page);
            }
            MshrAlloc::Secondary => {}
            MshrAlloc::Full => {
                self.stats.mshr_retries += 1;
                self.schedule(t + 8, Ev::L2TlbLookup(r));
            }
        }
    }

    /// Walk latency for `page`, aware of the leaf size: a walk that
    /// terminates at a 2 MB leaf skips the last level (three levels
    /// instead of four).
    fn walk_latency_for(&self, page: u64) -> Cycle {
        if self.lp.is_some() && self.page_table.large_mapped(page) {
            self.cfg.walk_latency - self.cfg.walk_latency / 4
        } else {
            self.cfg.walk_latency
        }
    }

    fn start_walk(&mut self, t: Cycle, page: u64) {
        self.walkers_active += 1;
        self.stats.walks += 1;
        let lat = self.walk_latency_for(page);
        if lat != self.cfg.walk_latency {
            if let Some(lp) = &mut self.lp {
                lp.stats.walks_large += 1;
            }
        }
        self.schedule(t + lat, Ev::WalkDone(page));
    }

    fn submit_walk(&mut self, t: Cycle, page: u64) {
        if self.walkers_active < self.cfg.num_walkers {
            self.start_walk(t, page);
        } else {
            self.walk_queue.push_back(page);
        }
    }

    fn ev_walk_done(&mut self, t: Cycle, page: u64) {
        self.walkers_active -= 1;
        if let Some(next) = self.walk_queue.pop_front() {
            self.start_walk(t, next);
        }
        let waiters = self.l2_tlb_mshr.complete(page);
        // A fault under a pending coalesce pass is *held*, never dropped:
        // the pass may be splintering state out from under the walk, so the
        // dispatch is deferred to the pass's settle event and re-evaluated
        // against the then-current page table.
        if let Some(lp) = &mut self.lp {
            let frame = frame_of(page);
            if lp.pending.contains_key(&frame) && self.page_table.state(page) != PageState::Present
            {
                lp.stats.held_faults += 1;
                lp.held.entry(frame).or_default().push((page, waiters));
                return;
            }
        }
        self.finish_walk(t, page, waiters);
    }

    /// Dispatch a completed walk on `page` to its waiters (the tail of
    /// [`MemSystem::ev_walk_done`], also replayed when a held fault's
    /// coalesce pass settles).
    fn finish_walk(&mut self, t: Cycle, page: u64, waiters: Vec<u64>) {
        let state = self.page_table.state(page);
        match state {
            PageState::Present => {
                let large = self.lp.is_some() && self.page_table.large_mapped(page);
                if large {
                    self.l2_tlb.fill_large(frame_tag(page));
                } else {
                    self.l2_tlb.fill(page_tag(page));
                }
                for w in waiters {
                    let r = w as u32;
                    if self.reqs[r as usize].dead {
                        self.retire_req(r);
                        continue;
                    }
                    let sm = self.accesses[self.reqs[r as usize].access as usize].sm;
                    if large {
                        self.l1_tlb[sm as usize].fill_large(frame_tag(page));
                    } else {
                        self.l1_tlb[sm as usize].fill(page_tag(page));
                    }
                    self.schedule(t + 1, Ev::TransOk(r));
                }
            }
            PageState::Invalid => {
                // Record the fatal condition instead of panicking: the
                // waiters retire dead so the hierarchy stays consistent and
                // the driving simulator aborts with a structured error.
                let sm = waiters
                    .first()
                    .map(|&w| self.accesses[self.reqs[w as usize].access as usize].sm)
                    .unwrap_or(0);
                if self.error.is_none() {
                    self.error = Some(MemError::InvalidPage { page, sm });
                }
                for w in waiters {
                    let r = w as u32;
                    self.reqs[r as usize].dead = true;
                    self.retire_req(r);
                }
            }
            _ => {
                let kind = match state {
                    PageState::CpuDirty => FaultKind::Migration,
                    PageState::CpuClean => FaultKind::AllocOnly,
                    _ => FaultKind::FirstTouch,
                };
                for w in waiters {
                    let r = w as u32;
                    if self.reqs[r as usize].dead {
                        self.retire_req(r);
                        continue;
                    }
                    let a = self.reqs[r as usize].access;
                    let sm = self.accesses[a as usize].sm;
                    let admission = self.fault_queue.try_report(page, kind, sm, t);
                    if self.tenant_accounting {
                        let tenant = self.fault_queue.tenant_of(page);
                        let e = self.tenant_fault_counts.entry(tenant).or_insert((0, 0));
                        if admission == crate::fault::FaultAdmission::Denied {
                            e.1 += 1;
                        } else {
                            e.0 += 1;
                        }
                    }
                    if admission == crate::fault::FaultAdmission::Denied {
                        // Tenant fault budget exhausted: the fault is never
                        // queued, so its region will never resolve. The
                        // request dies here and the issuing warp stalls —
                        // containment, not service. The driving simulator
                        // observes the denial and quarantines the tenant.
                        self.stats.denied_requests += 1;
                        match self.fault_mode {
                            FaultMode::StallReplay => {
                                self.reqs[r as usize].dead = true;
                                self.retire_req(r);
                            }
                            FaultMode::SquashNotify => {
                                self.accesses[a as usize].faulted_pages.push(page);
                                self.accesses[a as usize].pending_checks -= 1;
                                self.reqs[r as usize].dead = true;
                                self.retire_req(r);
                                self.maybe_finish_checks(t, a);
                            }
                        }
                        continue;
                    }
                    self.stats.faulted_requests += 1;
                    match self.fault_mode {
                        FaultMode::StallReplay => {
                            self.parked.entry(region_of(page)).or_default().push(r);
                        }
                        FaultMode::SquashNotify => {
                            self.accesses[a as usize].faulted_pages.push(page);
                            self.accesses[a as usize].pending_checks -= 1;
                            self.reqs[r as usize].dead = true;
                            self.retire_req(r);
                            self.maybe_finish_checks(t, a);
                        }
                    }
                }
            }
        }
    }

    fn ev_trans_ok(&mut self, t: Cycle, r: u32) {
        let req = self.reqs[r as usize];
        if req.dead {
            self.retire_req(r);
            return;
        }
        let a = req.access;
        self.accesses[a as usize].pending_checks -= 1;
        if !self.accesses[a as usize].faulted_pages.is_empty() {
            // A sibling request already faulted (squash mode): this request
            // will be squashed with the instruction; skip the data phase.
            self.reqs[r as usize].dead = true;
            self.retire_req(r);
            self.maybe_finish_checks(t, a);
            return;
        }
        self.accesses[a as usize].pending_data += 1;
        self.maybe_finish_checks(t, a);
        self.ev_data_phase(t, r);
    }

    fn maybe_finish_checks(&mut self, t: Cycle, a: u32) {
        let acc = &mut self.accesses[a as usize];
        if acc.pending_checks > 0 || acc.done {
            return;
        }
        if acc.faulted_pages.is_empty() {
            let token = AccessToken { idx: a, gen: acc.gen };
            let sm = acc.sm;
            self.outbox[sm as usize].push(AccessEvent::LastTlbCheck { token });
        } else {
            acc.done = true;
            let token = AccessToken { idx: a, gen: acc.gen };
            let sm = acc.sm;
            let pages = std::mem::take(&mut acc.faulted_pages);
            self.stats.faulted_accesses += 1;
            let queue_pos = pages
                .iter()
                .filter_map(|p| self.fault_queue.position(region_of(*p)))
                .min()
                .unwrap_or(0);
            self.outbox[sm as usize].push(AccessEvent::Fault { token, pages, queue_pos });
            self.maybe_free_access(a);
        }
        let _ = t;
    }

    // -------------------------------------------------------- data phase

    fn ev_data_phase(&mut self, t: Cycle, r: u32) {
        let req = self.reqs[r as usize];
        let acc = &self.accesses[req.access as usize];
        let sm = acc.sm as usize;
        let line = req.line;
        let l1_lat = self.l1[sm].latency;
        let l2_lat = self.l2.latency;
        match acc.kind {
            AccessKind::Store => {
                // Stores retire into a write buffer as soon as they are
                // translated (they can no longer fault); the write-through
                // to the L2 and the eventual DRAM write-back proceed in the
                // background. L1 stays coherent by invalidation, no
                // allocate.
                self.l1[sm].tags.invalidate(line_tag(line));
                if self.l2.tags.access(line_tag(line)) {
                    self.stats.l2_hits += 1;
                } else {
                    self.stats.l2_misses += 1;
                    self.l2.tags.fill(line_tag(line));
                    // Eventual write-back consumes DRAM bandwidth.
                    self.dram.bulk_transfer(t + l1_lat + l2_lat, LINE_BYTES);
                }
                self.schedule(t + 2, Ev::LineDone(r));
            }
            AccessKind::Atomic => {
                // Performed at the L2; an L2 miss fetches the line first.
                self.l1[sm].tags.invalidate(line_tag(line));
                if self.l2.tags.access(line_tag(line)) {
                    self.stats.l2_hits += 1;
                    self.schedule(t + l1_lat + l2_lat, Ev::LineDone(r));
                } else {
                    self.stats.l2_misses += 1;
                    self.l2.tags.fill(line_tag(line));
                    let done = self.dram.transfer(t + l1_lat + l2_lat, LINE_BYTES);
                    self.schedule(done, Ev::LineDone(r));
                }
            }
            AccessKind::Load => {
                if self.l1[sm].tags.access(line_tag(line)) {
                    self.stats.l1_hits += 1;
                    self.schedule(t + l1_lat, Ev::LineDone(r));
                    return;
                }
                match self.l1[sm].mshr.allocate(line, r as u64) {
                    MshrAlloc::Primary => {
                        self.stats.l1_misses += 1;
                        self.schedule(t + l1_lat, Ev::L2Lookup { line, sm: sm as u32 });
                    }
                    MshrAlloc::Secondary => {
                        self.stats.l1_misses += 1;
                    }
                    MshrAlloc::Full => {
                        // Not a new miss: the request retries until an MSHR
                        // frees.
                        self.stats.mshr_retries += 1;
                        self.schedule(t + 8, Ev::DataRetry(r));
                    }
                }
            }
        }
    }

    fn ev_l2_lookup(&mut self, t: Cycle, line: u64, sm: u32) {
        if self.l2.tags.access(line_tag(line)) {
            self.stats.l2_hits += 1;
            self.schedule(t + self.l2.latency, Ev::L2Resp { line, sm });
            return;
        }
        self.stats.l2_misses += 1;
        match self.l2.mshr.allocate(line, sm as u64) {
            MshrAlloc::Primary => {
                let done = self.dram.transfer(t + self.l2.latency, LINE_BYTES);
                self.schedule(done, Ev::DramReady { line });
            }
            MshrAlloc::Secondary => {}
            MshrAlloc::Full => {
                self.stats.mshr_retries += 1;
                self.schedule(t + 8, Ev::L2Lookup { line, sm });
            }
        }
    }

    fn ev_l2_resp(&mut self, t: Cycle, line: u64, sm: u32) {
        self.l1[sm as usize].tags.fill(line_tag(line));
        for w in self.l1[sm as usize].mshr.complete(line) {
            self.schedule(t, Ev::LineDone(w as u32));
        }
    }

    fn ev_dram_ready(&mut self, t: Cycle, line: u64) {
        self.l2.tags.fill(line_tag(line));
        for sm in self.l2.mshr.complete(line) {
            self.schedule(t, Ev::L2Resp { line, sm: sm as u32 });
        }
    }

    fn ev_line_done(&mut self, t: Cycle, r: u32) {
        let req = self.reqs[r as usize];
        if !req.dead && !req.retired {
            let a = req.access;
            self.accesses[a as usize].pending_data -= 1;
            let acc = &self.accesses[a as usize];
            if acc.pending_data == 0 && acc.pending_checks == 0 && !acc.done {
                let token = AccessToken { idx: a, gen: acc.gen };
                let sm = acc.sm;
                self.accesses[a as usize].done = true;
                self.outbox[sm as usize].push(AccessEvent::Data { token });
            }
        }
        self.retire_req(r);
        let _ = t;
    }

    fn retire_req(&mut self, r: u32) {
        let req = &mut self.reqs[r as usize];
        if req.retired {
            return;
        }
        req.retired = true;
        let a = req.access;
        self.free_reqs.push(r);
        self.accesses[a as usize].outstanding -= 1;
        self.maybe_free_access(a);
    }

    fn maybe_free_access(&mut self, a: u32) {
        let acc = &self.accesses[a as usize];
        if acc.outstanding == 0 && acc.done {
            self.free_accesses.push(a);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page_table::REGION_BYTES;
    use gex_isa::PAGE_BYTES;

    fn system(mode: FaultMode) -> MemSystem {
        let mut m = MemSystem::new(MemConfig::kepler_k20(), mode);
        // Map the first 16 MB as present so plain accesses translate.
        m.page_table.set_range(0, 16 << 20, PageState::Present);
        m
    }

    fn run_until_events(m: &mut MemSystem, sm: u32, horizon: Cycle) -> (Vec<AccessEvent>, Cycle) {
        let mut out = Vec::new();
        for t in 0..horizon {
            m.tick(t);
            let evs = m.drain_events(sm);
            if !evs.is_empty() {
                out.extend(evs);
            }
            if out.iter().any(|e| matches!(e, AccessEvent::Data { .. } | AccessEvent::Fault { .. }))
            {
                return (out, t);
            }
        }
        (out, horizon)
    }

    #[test]
    fn cold_load_goes_to_dram_then_warms_caches() {
        let mut m = system(FaultMode::SquashNotify);
        let tok = m.start_access(0, 0, AccessKind::Load, &[0x1000]);
        let (evs, t_cold) = run_until_events(&mut m, 0, 10_000);
        assert_eq!(evs[0], AccessEvent::LastTlbCheck { token: tok });
        assert_eq!(evs[1], AccessEvent::Data { token: tok });
        // Cold: TLB walk (~570) + L1 + L2 + DRAM (~310).
        assert!(t_cold > 800, "cold access too fast: {t_cold}");
        assert_eq!(m.stats().walks, 1);
        assert_eq!(m.stats().l1_misses, 1);
        assert_eq!(m.stats().l2_misses, 1);

        // Second access: TLB hit + L1 hit -> ~41 cycles.
        let start = t_cold + 1;
        let tok2 = m.start_access(start, 0, AccessKind::Load, &[0x1000]);
        let mut done_at = 0;
        for t in start..start + 200 {
            m.tick(t);
            for e in m.drain_events(0) {
                if e == (AccessEvent::Data { token: tok2 }) {
                    done_at = t;
                }
            }
            if done_at > 0 {
                break;
            }
        }
        let warm = done_at - start;
        assert!(warm <= 50, "warm hit took {warm} cycles");
        assert_eq!(m.stats().l1_hits, 1);
    }

    #[test]
    fn requests_inject_one_per_cycle_and_merge_in_mshrs() {
        let mut m = system(FaultMode::SquashNotify);
        // Two accesses to the same line from the same SM: the second merges.
        let t1 = m.start_access(0, 0, AccessKind::Load, &[0x2000]);
        let t2 = m.start_access(0, 0, AccessKind::Load, &[0x2000]);
        let mut done = std::collections::HashSet::new();
        for t in 0..10_000 {
            m.tick(t);
            for e in m.drain_events(0) {
                if let AccessEvent::Data { token } = e {
                    done.insert(token);
                }
            }
            if done.len() == 2 {
                break;
            }
        }
        assert!(done.contains(&t1) && done.contains(&t2));
        // Only one DRAM fill happened for the shared line.
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn store_completes_at_l2() {
        let mut m = system(FaultMode::SquashNotify);
        let tok = m.start_access(0, 0, AccessKind::Store, &[0x3000]);
        let (evs, t) = run_until_events(&mut m, 0, 10_000);
        assert!(evs.contains(&AccessEvent::Data { token: tok }));
        // No DRAM latency on the store completion path: walk + L1 + L2 only.
        assert!(t < 800, "store waited for DRAM: {t}");
    }

    #[test]
    fn squash_mode_faults_notify_and_enqueue() {
        let mut m = MemSystem::new(MemConfig::kepler_k20(), FaultMode::SquashNotify);
        m.page_table.set_range(0, 1 << 20, PageState::CpuDirty);
        let tok = m.start_access(0, 3, AccessKind::Load, &[0x1000, 0x1000 + PAGE_BYTES]);
        let (evs, _) = run_until_events(&mut m, 3, 10_000);
        let fault = evs
            .iter()
            .find_map(|e| match e {
                AccessEvent::Fault { token, pages, queue_pos } => Some((token, pages, queue_pos)),
                _ => None,
            })
            .expect("fault event");
        assert_eq!(*fault.0, tok);
        assert_eq!(fault.1.len(), 2, "both pages reported in one fault");
        assert_eq!(*fault.2, 0);
        // Same 64 KB region: one queue entry.
        assert_eq!(m.fault_queue.len(), 1);
        assert_eq!(m.stats().faulted_accesses, 1);
        // No LastTlbCheck and no Data for a faulted access.
        assert!(!evs.iter().any(|e| matches!(e, AccessEvent::LastTlbCheck { .. })));
        assert!(!evs.iter().any(|e| matches!(e, AccessEvent::Data { .. })));
    }

    #[test]
    fn stall_mode_faults_resolve_transparently() {
        let mut m = MemSystem::new(MemConfig::kepler_k20(), FaultMode::StallReplay);
        m.page_table.set_range(0, 1 << 20, PageState::CpuDirty);
        let tok = m.start_access(0, 0, AccessKind::Load, &[0x1000]);
        // Run past the walk: the request parks, no SM notification.
        for t in 0..2_000 {
            m.tick(t);
            assert!(m.drain_events(0).is_empty(), "no events while stalled");
        }
        assert_eq!(m.fault_queue.len(), 1);
        let entry = m.fault_queue.pop().unwrap();
        assert_eq!(entry.kind, FaultKind::Migration);
        // Handler resolves the region at t=5000.
        let mapped = m.resolve_region(entry.region, 5_000);
        assert_eq!(mapped as u64, REGION_BYTES / PAGE_BYTES);
        let mut got = Vec::new();
        for t in 5_000..20_000 {
            m.tick(t);
            got.extend(m.drain_events(0));
            if got.iter().any(|e| matches!(e, AccessEvent::Data { .. })) {
                break;
            }
        }
        assert!(got.contains(&AccessEvent::LastTlbCheck { token: tok }));
        assert!(got.contains(&AccessEvent::Data { token: tok }));
    }

    #[test]
    fn squashed_access_replays_after_resolution() {
        let mut m = MemSystem::new(MemConfig::kepler_k20(), FaultMode::SquashNotify);
        m.page_table.add_lazy_range(0, 1 << 20); // first-touch region
        let tok = m.start_access(0, 0, AccessKind::Store, &[0x4000]);
        let (evs, t_fault) = run_until_events(&mut m, 0, 10_000);
        let AccessEvent::Fault { token, pages, .. } = &evs[0] else {
            panic!("expected fault, got {evs:?}");
        };
        assert_eq!(*token, tok);
        let entry = m.fault_queue.pop().unwrap();
        assert_eq!(entry.kind, FaultKind::FirstTouch);
        m.resolve_region(pages[0], t_fault + 100);
        // Replay the instruction: fresh access, must now succeed.
        let tok2 = m.start_access(t_fault + 101, 0, AccessKind::Store, &[0x4000]);
        let mut got = Vec::new();
        for t in t_fault + 101..t_fault + 10_000 {
            m.tick(t);
            got.extend(m.drain_events(0));
            if got.iter().any(|e| matches!(e, AccessEvent::Data { .. })) {
                break;
            }
        }
        assert!(got.contains(&AccessEvent::Data { token: tok2 }));
    }

    #[test]
    fn wide_access_reports_last_tlb_check_after_all_lines() {
        let mut m = system(FaultMode::SquashNotify);
        // 32 lines across 2 pages, cold TLB: check order and single events.
        let lines: Vec<u64> = (0..32).map(|i| 0x10_0000 + i * 128).collect();
        let tok = m.start_access(0, 0, AccessKind::Load, &lines);
        let (evs, _) = run_until_events(&mut m, 0, 50_000);
        let checks = evs.iter().filter(|e| matches!(e, AccessEvent::LastTlbCheck { .. })).count();
        let datas = evs.iter().filter(|e| matches!(e, AccessEvent::Data { .. })).count();
        assert_eq!((checks, datas), (1, 1));
        assert_eq!(evs.last().unwrap(), &AccessEvent::Data { token: tok });
        // 2 pages -> at most 2 walks (per-page dedup in the TLB MSHRs).
        assert!(m.stats().walks <= 2, "walks = {}", m.stats().walks);
    }

    #[test]
    fn l1_mshr_capacity_forces_retries() {
        let mut m = system(FaultMode::SquashNotify);
        // 40 distinct lines from one SM exceed the 32 L1 MSHRs.
        let lines: Vec<u64> = (0..40).map(|i| 0x20_0000 + i * 128).collect();
        let tok = m.start_access(0, 0, AccessKind::Load, &lines);
        let (evs, _) = run_until_events(&mut m, 0, 100_000);
        assert!(evs.contains(&AccessEvent::Data { token: tok }));
        assert!(m.stats().mshr_retries > 0, "expected MSHR-full retries");
    }

    #[test]
    fn token_generations_do_not_alias() {
        let mut m = system(FaultMode::SquashNotify);
        let t1 = m.start_access(0, 0, AccessKind::Load, &[0x5000]);
        let (evs, t_done) = run_until_events(&mut m, 0, 10_000);
        assert!(evs.contains(&AccessEvent::Data { token: t1 }));
        // The slot is recycled; the new token must differ.
        let t2 = m.start_access(t_done + 1, 0, AccessKind::Load, &[0x6000]);
        assert_ne!(t1, t2);
    }

    #[test]
    fn caches_use_all_sets() {
        // Regression: 128 B-aligned addresses must spread across cache
        // sets, not alias into set 0. 64 distinct lines fit the 32 KB L1
        // comfortably; a second pass must hit for all of them.
        let mut m = system(FaultMode::SquashNotify);
        let lines: Vec<u64> = (0..64u64).map(|i| 0x40_0000 + i * 128).collect();
        let t1 = m.start_access(0, 0, AccessKind::Load, &lines);
        let (evs, t_done) = run_until_events(&mut m, 0, 100_000);
        assert!(evs.contains(&AccessEvent::Data { token: t1 }));
        let misses_before = m.stats().l1_misses;
        assert_eq!(misses_before, 64);
        let t2 = m.start_access(t_done + 1, 0, AccessKind::Load, &lines);
        let mut done = false;
        for t in t_done + 1..t_done + 100_000 {
            m.tick(t);
            if m.drain_events(0).contains(&AccessEvent::Data { token: t2 }) {
                done = true;
                break;
            }
        }
        assert!(done);
        assert_eq!(m.stats().l1_misses, misses_before, "second pass must be all hits");
        assert_eq!(m.stats().l1_hits, 64);
        // And the TLBs likewise: 2 pages walked once each.
        assert_eq!(m.stats().walks, 2);
    }

    #[test]
    fn invalid_access_reports_typed_error() {
        let mut m = MemSystem::new(MemConfig::kepler_k20(), FaultMode::SquashNotify);
        m.start_access(0, 2, AccessKind::Load, &[0xdead_0000]);
        for t in 0..5_000 {
            m.tick(t);
        }
        let err = m.error().cloned().expect("invalid access must record an error");
        let MemError::InvalidPage { page, sm } = err;
        assert_eq!(page, gex_isa::page_of(0xdead_0000));
        assert_eq!(sm, 2);
        assert!(err.to_string().contains("invalid page"));
        // take_error clears it.
        assert!(m.take_error().is_some());
        assert!(m.take_error().is_none());
    }
}
