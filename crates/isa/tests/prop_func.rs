//! Property tests for the functional simulator: random programs must
//! execute deterministically, stay inside their buffers, and produce
//! well-formed traces.

use gex_isa::asm::Asm;
use gex_isa::func::FuncSim;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{CmpKind, CmpType};
use gex_isa::reg::{Pred, Reg};
use gex_isa::trace::DynKind;
use gex_testkit::prelude::*;

const BUF: u64 = 0x10_0000;
const BUF_LEN: u64 = 1 << 16; // 64 KB

/// One random instruction of a straight-line body. Registers are confined
/// to R1..R7 with R0 holding the thread id and R8 a buffer-safe address.
#[derive(Debug, Clone)]
enum Op {
    Alu(u8, u8, u8, u8), // kind, dst, a, b
    Sfu(u8, u8),
    Load(u8, u32),
    Store(u8, u32),
    GuardedAlu(u8, u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..8, 1u8..8, 1u8..8, 1u8..8).prop_map(|(k, d, a, b)| Op::Alu(k, d, a, b)),
        (0u8..3, 1u8..8).prop_map(|(k, d)| Op::Sfu(k, d)),
        (1u8..8, 0u32..(BUF_LEN as u32 / 2)).prop_map(|(d, o)| Op::Load(d, o & !3)),
        (1u8..8, 0u32..(BUF_LEN as u32 / 2)).prop_map(|(v, o)| Op::Store(v, o & !3)),
        (1u8..8, 1u8..8, 1u8..8).prop_map(|(d, a, b)| Op::GuardedAlu(d, a, b)),
    ]
}

fn emit(a: &mut Asm, op: &Op) {
    let r = |n: u8| Reg(n);
    match *op {
        Op::Alu(k, d, x, y) => {
            match k {
                0 => a.add(r(d), r(x), r(y)),
                1 => a.sub(r(d), r(x), r(y)),
                2 => a.mul(r(d), r(x), r(y)),
                3 => a.and(r(d), r(x), r(y)),
                4 => a.or(r(d), r(x), r(y)),
                5 => a.xor(r(d), r(x), r(y)),
                6 => a.min(r(d), r(x), r(y)),
                _ => a.max(r(d), r(x), r(y)),
            };
        }
        Op::Sfu(k, d) => {
            match k {
                0 => a.fsqrt(r(d), r(d)),
                1 => a.frsqrt(r(d), r(d)),
                _ => a.fexp2(r(d), r(d)),
            };
        }
        Op::Load(d, off) => {
            // address = BUF + (tid*4 + off) clamped inside the buffer
            a.shl_imm(Reg(8), Reg(0), 2);
            a.add(Reg(8), Reg(8), off as u64);
            a.and(Reg(8), Reg(8), BUF_LEN - 4);
            a.add(Reg(8), Reg(8), BUF);
            a.ld_global_u32(r(d), Reg(8), 0);
        }
        Op::Store(v, off) => {
            a.shl_imm(Reg(8), Reg(0), 2);
            a.add(Reg(8), Reg(8), off as u64);
            a.and(Reg(8), Reg(8), BUF_LEN - 4);
            a.add(Reg(8), Reg(8), BUF);
            a.st_global_u32(Reg(8), r(v), 0);
        }
        Op::GuardedAlu(d, x, y) => {
            a.setp(Pred(0), CmpKind::Lt, CmpType::U64, r(x), r(y));
            a.guard(Pred(0), true);
            a.add(r(d), r(x), r(y));
            a.unguard();
        }
    }
}

fn build_and_run(ops: &[Op], loop_trips: u64, threads: u32) -> (gex_isa::func::FuncRun, MemImage) {
    let mut a = Asm::new();
    let (i, p) = (Reg(9), Pred(1));
    a.gtid(Reg(0));
    a.mov(i, 0u64);
    a.label("body");
    for op in ops {
        emit(&mut a, op);
    }
    a.add(i, i, 1u64);
    a.setp(p, CmpKind::Lt, CmpType::U64, i, loop_trips);
    a.bra_if("body", p, true);
    a.exit();
    let k = KernelBuilder::new("prop", a.assemble().expect("assembles"))
        .grid(Dim3::x(2))
        .block(Dim3::x(threads))
        .regs_per_thread(16)
        .build()
        .expect("kernel");
    let mut mem = MemImage::new();
    for j in 0..BUF_LEN / 4 {
        mem.write_u32(BUF + j * 4, (j * 2654435761) as u32);
    }
    let run = FuncSim::new().run(&k, &mut mem).expect("runs");
    (run, mem)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_programs_are_deterministic(
        ops in gex_testkit::collection::vec(op_strategy(), 1..12),
        trips in 1u64..4,
        threads in prop_oneof![Just(32u32), Just(64), Just(96)],
    ) {
        let (r1, m1) = build_and_run(&ops, trips, threads);
        let (r2, m2) = build_and_run(&ops, trips, threads);
        prop_assert_eq!(r1.stats, r2.stats);
        prop_assert_eq!(r1.trace.dyn_instrs(), r2.trace.dyn_instrs());
        prop_assert_eq!(m1.touched_pages(), m2.touched_pages());
    }

    #[test]
    fn traces_stay_inside_the_buffer(
        ops in gex_testkit::collection::vec(op_strategy(), 1..12),
        trips in 1u64..4,
    ) {
        let (run, _) = build_and_run(&ops, trips, 64);
        for &page in run.trace.touched_pages() {
            prop_assert!((BUF..BUF + BUF_LEN).contains(&page),
                "page {page:#x} escaped the buffer");
        }
    }

    #[test]
    fn every_warp_trace_ends_with_exit(
        ops in gex_testkit::collection::vec(op_strategy(), 1..8),
    ) {
        let (run, _) = build_and_run(&ops, 2, 64);
        for b in &run.trace.blocks {
            for w in b.warps() {
                prop_assert!(!w.is_empty());
                prop_assert_eq!(w.last().unwrap().kind, DynKind::Exit);
            }
        }
    }

    #[test]
    fn coalesced_lines_are_sorted_unique(
        ops in gex_testkit::collection::vec(op_strategy(), 1..12),
    ) {
        let (run, _) = build_and_run(&ops, 2, 64);
        for d in run.trace.blocks.iter().flat_map(|b| b.instrs().iter()) {
            if let Some(m) = &d.mem {
                let mut sorted = m.lines.clone();
                sorted.sort_unstable();
                sorted.dedup();
                prop_assert_eq!(&sorted, &m.lines, "lines must be sorted and unique");
                prop_assert!(m.lines.len() <= 32, "a warp generates at most 32 requests");
                for l in &m.lines {
                    prop_assert_eq!(l % 128, 0, "line addresses are 128B-aligned");
                }
            }
        }
    }
}
