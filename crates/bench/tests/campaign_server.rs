//! The crash-safety keystone, end to end against the real daemon binary:
//! start `gex-served`, submit two concurrent campaigns from different
//! tenants (one healthy, one poisoned with a panicking injection plan),
//! `SIGKILL` the daemon mid-run, restart it on the same journal
//! directory, and assert that
//!
//! * the healthy campaign resumes and completes with results
//!   byte-identical to a serial in-process reference run,
//! * the poisoned campaign is quarantined with its tenant still locked
//!   out after the restart, and
//! * a partitioned (two-tenant shared-GPU) campaign resumes and reports
//!   cycles byte-identical to a direct shared simulation — the packed
//!   journal values decode the same on both sides of the kill.

use gex::workloads::suite;
use gex::{
    Gpu, GpuConfig, Interconnect, PageSizePolicy, PagingMode, PartitionPolicy, Preset, Scheme,
    TenantId, TenantWorkload,
};
use gex_serve::wire::Inject;
use gex_serve::{CampaignSpec, Client, ClientConfig, ClientError, PointResult};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Daemon {
    child: Child,
    addr: String,
}

/// Start the real `gex-served` binary on a free port and scrape the
/// bound address from its first stdout line.
fn start_daemon(journal_dir: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_gex-served"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--journal-dir",
            journal_dir.to_str().unwrap(),
            "--batch",
            "1",
            "--fault-budget",
            "2",
            "--threads",
            "2",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn gex-served");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("daemon banner");
    let addr = line
        .trim()
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .to_string();
    assert!(line.contains("listening"), "unexpected banner: {line}");
    Daemon { child, addr }
}

fn client(addr: &str) -> Client {
    Client::connect(
        addr,
        ClientConfig {
            connect_retries: 20,
            backoff: Duration::from_millis(25),
            timeout: Duration::from_secs(60),
        },
    )
    .expect("connect to daemon")
}

#[test]
fn sigkill_mid_campaign_resumes_byte_identically_and_keeps_quarantine() {
    let dir = std::env::temp_dir()
        .join(format!("gex-campaign-sigkill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let schemes = [Scheme::Baseline, Scheme::WdCommit, Scheme::ReplayQueue];
    let workloads = ["histo", "lbm", "sgemm", "spmv"];
    let healthy = CampaignSpec::new(
        Preset::Test,
        2,
        workloads.iter().map(|s| s.to_string()).collect(),
        schemes.to_vec(),
    );
    let mut poisoned = CampaignSpec::new(
        Preset::Test,
        2,
        vec!["histo".to_string()],
        schemes.to_vec(),
    );
    poisoned.inject = Some(Inject::Panic);
    // A third tenant shares the simulated GPU: every point runs as a
    // two-tenant shared simulation next to the server's background
    // neighbor under the quarantine policy.
    let mut shared = CampaignSpec::new(
        Preset::Test,
        2,
        vec!["histo".to_string()],
        vec![Scheme::Baseline, Scheme::ReplayQueue],
    );
    shared.partition = Some(PartitionPolicy::Quarantine);
    // A fourth campaign opts into transparent 2 MB large pages via the
    // spec's `pagesize` field; the policy must survive the journal and
    // the kill — resumed points re-simulate under the same paging setup.
    let mut paged = CampaignSpec::new(
        Preset::Test,
        2,
        vec!["lbm".to_string()],
        vec![Scheme::ReplayQueue],
    );
    paged.partition = Some(PartitionPolicy::Quarantine);
    paged.pagesize = Some(PageSizePolicy::Transparent);
    // A fifth campaign opts into the intra-run parallel two-phase tick
    // via the spec's `sm_threads` field. The knob is execution strategy,
    // not simulation identity: the journal bytes — and therefore the
    // crash/resume digest — must be exactly what a serial run produces.
    let mut threaded = CampaignSpec::new(
        Preset::Test,
        4,
        vec!["sad".to_string(), "spmv".to_string()],
        vec![Scheme::WdLastCheck],
    );
    threaded.sm_threads = Some(2);

    // Phase 1: submit all five campaigns, wait for partial progress,
    // SIGKILL.
    let first = start_daemon(&dir);
    {
        let mut c = client(&first.addr);
        let admitted = c.submit("alice", "big", &healthy).expect("admit healthy");
        assert_eq!(admitted.points, 12);
        c.submit("chaos", "bomb", &poisoned).expect("admit poisoned");
        c.submit("bob", "shared", &shared).expect("admit partitioned");
        c.submit("dana", "paged", &paged).expect("admit large-page campaign");
        c.submit("erin", "smt", &threaded).expect("admit sm-threads campaign");

        let deadline = Instant::now() + Duration::from_secs(120);
        loop {
            assert!(Instant::now() < deadline, "no progress before the kill window");
            let st = c.status("alice", "big").expect("status");
            if st.done >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let mut child = first.child;
    child.kill().expect("SIGKILL the daemon"); // Child::kill is SIGKILL on unix
    child.wait().expect("reap");

    // Phase 2: a fresh daemon on the same journal directory.
    let second = start_daemon(&dir);
    let mut c = client(&second.addr);

    // The healthy campaign resumed without any client re-submit and runs
    // to completion.
    let done = c
        .wait("alice", "big", Duration::from_millis(25))
        .expect("healthy campaign finishes after restart");
    assert_eq!(done.state, "done", "healthy campaign must complete: {done:?}");
    assert_eq!(done.done, 12);
    assert!(done.resumed >= 1, "restart must serve journaled points from disk");

    // Byte-identical to a serial in-process reference: the daemon adds
    // supervision, scheduling, a kill and a restart — never different
    // numbers.
    let (_, points) = c.results("alice", "big").expect("results");
    assert_eq!(points.len(), 12);
    for p in &points {
        let PointResult::Done { key, cycles } = p else {
            panic!("healthy campaign must have no failed points: {p:?}")
        };
        let (wname, sdbg) = key.split_once('/').unwrap();
        let scheme = *schemes.iter().find(|s| format!("{s:?}") == sdbg).unwrap();
        let w = suite::by_name(wname, Preset::Test).unwrap();
        let reference = gex::run_workload(&w, scheme, PagingMode::AllResident, 2);
        assert_eq!(
            reference.cycles, *cycles,
            "{key}: post-crash result must equal the serial reference"
        );
    }

    // The partitioned campaign resumed too, and its reported cycles —
    // packed with the storm flag in the journal, decoded on the wire —
    // equal a direct two-tenant shared simulation.
    let shared_done = c
        .wait("bob", "shared", Duration::from_millis(25))
        .expect("partitioned campaign finishes after restart");
    assert_eq!(shared_done.state, "done", "partitioned campaign: {shared_done:?}");
    assert_eq!(shared_done.done, 2);
    let (_, points) = c.results("bob", "shared").expect("shared results");
    let bg = suite::by_name("histo", Preset::Test).unwrap();
    for p in &points {
        let PointResult::Done { key, cycles } = p else {
            panic!("partitioned campaign must have no failed points: {p:?}")
        };
        let sdbg = key.split_once('/').unwrap().1;
        let scheme = *[Scheme::Baseline, Scheme::ReplayQueue]
            .iter()
            .find(|s| format!("{s:?}") == sdbg)
            .unwrap();
        let w = suite::by_name("histo", Preset::Test).unwrap();
        let tenants = [
            TenantWorkload::new(TenantId::new("bob"), w.trace.clone(), w.demand_residency())
                .fault_budget(64),
            TenantWorkload::new(
                TenantId::new("serve/background"),
                bg.trace.clone(),
                bg.demand_residency(),
            ),
        ];
        let reference = Gpu::new(
            GpuConfig::kepler_k20().with_sms(2),
            scheme,
            PagingMode::demand(Interconnect::nvlink()),
        )
        .try_run_multi(&tenants, PartitionPolicy::Quarantine)
        .expect("reference shared run");
        assert!(!reference.tenants[0].quarantined, "{key}: histo must not storm");
        assert_eq!(
            reference.tenants[0].cycles, *cycles,
            "{key}: post-crash shared result must equal the direct shared simulation"
        );
    }

    // The large-page campaign resumed with its page-size policy intact:
    // the reported cycles equal a direct shared simulation under
    // `PageSizePolicy::Transparent`.
    let paged_done = c
        .wait("dana", "paged", Duration::from_millis(25))
        .expect("large-page campaign finishes after restart");
    assert_eq!(paged_done.state, "done", "large-page campaign: {paged_done:?}");
    assert_eq!(paged_done.done, 1);
    let (_, points) = c.results("dana", "paged").expect("paged results");
    for p in &points {
        let PointResult::Done { key, cycles } = p else {
            panic!("large-page campaign must have no failed points: {p:?}")
        };
        let w = suite::by_name("lbm", Preset::Test).unwrap();
        let tenants = [
            TenantWorkload::new(TenantId::new("dana"), w.trace.clone(), w.demand_residency())
                .fault_budget(64),
            TenantWorkload::new(
                TenantId::new("serve/background"),
                bg.trace.clone(),
                bg.demand_residency(),
            ),
        ];
        let reference = Gpu::new(
            GpuConfig::kepler_k20().with_sms(2).with_page_size(PageSizePolicy::Transparent),
            Scheme::ReplayQueue,
            PagingMode::demand(Interconnect::nvlink()),
        )
        .try_run_multi(&tenants, PartitionPolicy::Quarantine)
        .expect("reference large-page shared run");
        assert!(!reference.tenants[0].quarantined, "{key}: lbm must not storm");
        assert_eq!(
            reference.tenants[0].cycles, *cycles,
            "{key}: post-crash large-page result must equal the direct simulation"
        );
    }

    // The sm_threads=2 campaign resumed with its thread count intact and
    // reports cycles byte-identical to this process's serial reference —
    // the journal digest is independent of the intra-run thread count.
    let smt_done = c
        .wait("erin", "smt", Duration::from_millis(25))
        .expect("sm-threads campaign finishes after restart");
    assert_eq!(smt_done.state, "done", "sm-threads campaign: {smt_done:?}");
    assert_eq!(smt_done.done, 2);
    let (_, points) = c.results("erin", "smt").expect("smt results");
    for p in &points {
        let PointResult::Done { key, cycles } = p else {
            panic!("sm-threads campaign must have no failed points: {p:?}")
        };
        let wname = key.split_once('/').unwrap().0;
        let w = suite::by_name(wname, Preset::Test).unwrap();
        let reference = gex::run_workload(&w, Scheme::WdLastCheck, PagingMode::AllResident, 4);
        assert_eq!(
            reference.cycles, *cycles,
            "{key}: a parallel-tick campaign must journal exactly the serial cycles"
        );
    }

    // The poisoned campaign is terminal-quarantined, and its tenant's
    // fault history survived the kill: new submits stay rejected.
    let bomb = c
        .wait("chaos", "bomb", Duration::from_millis(25))
        .expect("poisoned campaign reaches a terminal state");
    assert_eq!(bomb.state, "quarantined", "poisoned campaign: {bomb:?}");
    assert_eq!(bomb.done, 0, "no poisoned point may report success");
    assert_eq!(bomb.quarantined, 3);
    match c.submit("chaos", "retry", &healthy) {
        Err(ClientError::Rejected(m)) => {
            assert!(m.contains("quarantined"), "tenant lockout survives restart: {m}")
        }
        other => panic!("quarantined tenant must stay locked out, got {other:?}"),
    }

    // Graceful stop this time.
    c.shutdown().expect("shutdown op");
    let mut child = second.child;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                assert!(status.success(), "clean daemon exit, got {status}");
                break;
            }
            None if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(50)),
            None => {
                let _ = child.kill();
                panic!("daemon did not stop after the shutdown op");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
