//! # gex-sim — the whole-GPU simulator
//!
//! Glues the `gex-sm` SM pipelines and the `gex-mem` hierarchy into the
//! paper's full baseline system (Figure 1): a global thread-block
//! scheduler, a host interface to a serialized CPU fault handler, the
//! interconnect cost models (NVLink / PCIe 3.0), and the paper's two use
//! cases built on preemptible faults:
//!
//! * **Block switching on fault** (Section 4.1) — per-SM local schedulers
//!   that context-switch faulted blocks during page migrations
//!   ([`block_switch`]).
//! * **GPU-local fault handling** (Section 4.2) — first-touch faults
//!   resolved by handlers running on the faulting SMs ([`local_fault`]).
//!
//! Entry point: build a [`Gpu`] with a [`GpuConfig`], a
//! [`Scheme`](gex_sm::Scheme) and a [`PagingMode`], then [`Gpu::run`] a
//! kernel trace with its initial [`Residency`].

#![warn(missing_docs)]

pub mod block_switch;
pub mod config;
pub mod error;
pub mod gpu;
pub mod inject;
pub mod interconnect;
pub mod local_fault;
pub mod paging;
pub mod report;
pub mod residency;
pub mod tenant;

pub use block_switch::BlockSwitchConfig;
pub use config::{set_default_max_cycles, GpuConfig, PagingMode};
pub use gex_mem::{default_page_size, set_default_page_size, LpStats, PageSizePolicy};
pub use error::{DeadlineDiagnostic, SimError, WatchdogDiagnostic};
pub use gex_sm::{BudgetExceeded, CancelToken, RunBudget};
pub use gpu::{scan_probe_count, set_arena_enabled, Gpu};
pub use inject::{InjectionPlan, InjectionStats, Injector};
pub use interconnect::{Interconnect, CYCLES_PER_US};
pub use local_fault::LocalFaultConfig;
pub use report::{geomean, GpuRunReport};
pub use residency::Residency;
pub use tenant::{
    pack_outcome, unpack_outcome, PartitionPolicy, SharedRunReport, TenantId, TenantRunReport,
    TenantWorkload, TENANT_SHIFT,
};
