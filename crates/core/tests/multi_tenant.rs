//! Multi-tenant noisy-neighbor containment keystone.
//!
//! The contract of [`PartitionPolicy`] (ISSUE 8):
//!
//! * **Static** — a victim tenant's [`gex::GpuRunReport`] is
//!   *byte-identical* to running it alone at its SM share, whether its
//!   neighbor is quiet or a chaos-injected storm that exhausts its fault
//!   budget and wedges.
//! * **Shared** — the same neighbor measurably slows the victim down (the
//!   regime the containment figure quantifies).
//! * **Quarantine** — the shared engine denies the noisy tenant's faults
//!   once its budget is spent and locks it out; the victim still finishes
//!   every block.
//!
//! All three properties are asserted across every exception scheme.

use gex::workloads::{suite, Preset};
use gex::{
    Gpu, GpuConfig, InjectionPlan, Interconnect, PageSizePolicy, PagingMode, PartitionPolicy,
    Scheme, TenantId, TenantWorkload,
};

const SMS: u32 = 4;
const CHAOS_SEED: u64 = 7;
const CHAOS_BUDGET: u32 = 4;

const SCHEMES: [Scheme; 5] = [
    Scheme::Baseline,
    Scheme::WdCommit,
    Scheme::WdLastCheck,
    Scheme::ReplayQueue,
    Scheme::OperandLog { bytes: 8192 },
];

fn gpu(scheme: Scheme, sms: u32) -> Gpu {
    Gpu::new(
        GpuConfig::kepler_k20().with_sms(sms),
        scheme,
        PagingMode::demand(Interconnect::nvlink()),
    )
}

fn victim() -> TenantWorkload {
    let w = suite::by_name("histo", Preset::Test).unwrap();
    TenantWorkload::new(TenantId::new("victim"), w.trace.clone(), w.demand_residency())
}

/// A neighbor that faults heavily, perturbs the shared handler, and blows
/// through its fault budget. `lbm` touches ~20 fault regions under the
/// Test preset, so a budget of [`CHAOS_BUDGET`] regions always exhausts.
fn chaos() -> TenantWorkload {
    let w = suite::by_name("lbm", Preset::Test).unwrap();
    TenantWorkload::new(TenantId::new("chaos"), w.trace.clone(), w.demand_residency())
        .inject(InjectionPlan::chaos(CHAOS_SEED))
        .fault_budget(CHAOS_BUDGET)
}

/// The same neighbor behaving itself.
fn quiet() -> TenantWorkload {
    let w = suite::by_name("lbm", Preset::Test).unwrap();
    TenantWorkload::new(TenantId::new("chaos"), w.trace.clone(), w.demand_residency())
}

/// Static partitioning: the victim's full report is byte-identical to a
/// solo run at its SM share — with a quiet neighbor, and with a chaos
/// neighbor that wedges on an exhausted fault budget.
#[test]
fn static_partition_keeps_victims_byte_identical() {
    for scheme in SCHEMES {
        let w = suite::by_name("histo", Preset::Test).unwrap();
        // static_shares(4, 2) gives each tenant 2 SMs.
        let solo = gpu(scheme, SMS / 2).run(&w.trace, &w.demand_residency());

        let with_chaos = gpu(scheme, SMS).run_multi(&[victim(), chaos()], PartitionPolicy::Static);
        let with_quiet = gpu(scheme, SMS).run_multi(&[victim(), quiet()], PartitionPolicy::Static);

        let vid = TenantId::new("victim");
        let vc = with_chaos.tenant(&vid).unwrap();
        let vq = with_quiet.tenant(&vid).unwrap();
        assert!(!vc.quarantined && !vq.quarantined, "victim must never quarantine ({scheme:?})");
        assert_eq!(
            vc.solo.as_deref(),
            Some(&solo),
            "victim next to chaos diverged from its solo run ({scheme:?})"
        );
        assert_eq!(
            vq.solo.as_deref(),
            Some(&solo),
            "victim next to a quiet neighbor diverged from its solo run ({scheme:?})"
        );

        // The chaos tenant's private sub-run wedged on its budget and was
        // marked quarantined with a surfaced error.
        let c = with_chaos.tenant(&TenantId::new("chaos")).unwrap();
        assert!(c.quarantined, "chaos tenant must exhaust its budget and wedge ({scheme:?})");
        assert!(c.error.is_some(), "static quarantine must carry the sub-run error ({scheme:?})");
        // The quiet neighbor finishes normally.
        let q = with_quiet.tenant(&TenantId::new("chaos")).unwrap();
        assert!(!q.quarantined && q.completed == q.blocks, "quiet neighbor failed ({scheme:?})");
    }
}

/// Splinter-storm budget regression (ISSUE 9): under `HugeOnly` with a
/// deliberately tiny GPU memory, eviction pressure from the neighbor
/// splinters the victim's 2 MB huge pages over and over, and every
/// splinter makes the victim re-fault regions its budget already paid
/// for. Budgets meter *distinct regions*, not enqueues — so a victim
/// whose budget covers its fault footprint exactly once (lbm under
/// `HugeOnly` faults a single region: the first fault maps the whole
/// frame) must sail through the storm with zero denials and no
/// quarantine, while the re-faults show up as extra fault traffic
/// against an unconstrained run. With per-enqueue charging this exact
/// setup denies the victim's re-fault and locks it out.
#[test]
fn splinter_storm_refaults_never_exhaust_a_region_budget() {
    let build = |mem_bytes: Option<u64>| {
        let mut cfg =
            GpuConfig::kepler_k20().with_sms(SMS).with_page_size(PageSizePolicy::HugeOnly);
        if let Some(bytes) = mem_bytes {
            cfg.mem.gpu_mem_bytes = bytes;
        }
        Gpu::new(cfg, Scheme::ReplayQueue, PagingMode::demand(Interconnect::nvlink()))
    };
    // The victim is the fault-heaviest workload (lbm) with a budget of
    // exactly one region — its full distinct-region footprint here; the
    // neighbor is the same workload, well-behaved.
    let w = suite::by_name("lbm", Preset::Test).unwrap();
    let budgeted_victim =
        TenantWorkload::new(TenantId::new("victim"), w.trace.clone(), w.demand_residency())
            .fault_budget(1);
    let tenants = [budgeted_victim, quiet()];

    let roomy = build(None).run_multi(&tenants, PartitionPolicy::Quarantine);
    // One 2 MB frame for two tenants: every admission evicts (and
    // splinters) the neighbor, so both sides re-fault constantly.
    let tight = build(Some(2 * 1024 * 1024)).run_multi(&tenants, PartitionPolicy::Quarantine);

    let vid = TenantId::new("victim");
    let (rv, tv) = (roomy.tenant(&vid).unwrap(), tight.tenant(&vid).unwrap());
    assert!(
        tv.faulted_requests > rv.faulted_requests,
        "memory pressure must splinter and re-fault the victim \
         (tight {} vs roomy {} faulted requests)",
        tv.faulted_requests,
        rv.faulted_requests
    );
    for v in [rv, tv] {
        assert!(!v.quarantined, "re-faults of charged regions must never quarantine the victim");
        assert_eq!(v.denied_requests, 0, "re-faults of charged regions must be free");
        assert_eq!(v.completed, v.blocks, "victim must finish through the splinter storm");
    }
}

/// Sharing the engine with the chaos neighbor costs the victim cycles,
/// while quarantine denies the neighbor's faults, locks it out, and lets
/// the victim finish every block.
#[test]
fn shared_degrades_victims_and_quarantine_locks_out_chaos() {
    for scheme in SCHEMES {
        let w = suite::by_name("histo", Preset::Test).unwrap();
        let solo_full = gpu(scheme, SMS).run(&w.trace, &w.demand_residency());

        let shared = gpu(scheme, SMS).run_multi(&[victim(), chaos()], PartitionPolicy::Shared);
        let vid = TenantId::new("victim");
        let sv = shared.tenant(&vid).unwrap();
        assert!(!sv.quarantined, "shared policy never quarantines ({scheme:?})");
        assert_eq!(sv.completed, sv.blocks, "victim must finish under sharing ({scheme:?})");
        assert!(
            sv.cycles > solo_full.cycles,
            "a chaos neighbor must cost the victim: shared {} vs solo {} ({scheme:?})",
            sv.cycles,
            solo_full.cycles
        );
        // Shared runs attribute memory traffic per tenant.
        assert!(sv.faulted_requests > 0, "victim faults under demand paging ({scheme:?})");
        assert_eq!(sv.denied_requests, 0, "victim has no budget to deny ({scheme:?})");
        assert!(sv.tlb_hits + sv.tlb_misses > 0, "victim TLB traffic untracked ({scheme:?})");

        let quarantined =
            gpu(scheme, SMS).run_multi(&[victim(), chaos()], PartitionPolicy::Quarantine);
        let qc = quarantined.tenant(&TenantId::new("chaos")).unwrap();
        assert!(qc.quarantined, "chaos tenant must be locked out ({scheme:?})");
        assert!(qc.denied_requests > 0, "lockout must follow a denial ({scheme:?})");
        let qv = quarantined.tenant(&vid).unwrap();
        assert!(!qv.quarantined, "victim must survive the lockout ({scheme:?})");
        assert_eq!(qv.completed, qv.blocks, "victim must finish after the lockout ({scheme:?})");
        assert_eq!(qv.denied_requests, 0, "denials must charge only the noisy tenant ({scheme:?})");
    }
}
