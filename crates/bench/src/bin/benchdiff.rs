//! Bench-regression gate: compare two perfstat snapshots and fail on a
//! large throughput drop.
//!
//! ```text
//! cargo run -p gex-bench --release --bin benchdiff -- OLD.json NEW.json
//! cargo run -p gex-bench --release --bin benchdiff -- [--out DIR]
//! ```
//!
//! With two explicit paths, compares them directly. With none, compares
//! the two newest `BENCH_<n>.json` in the output directory (default `.`),
//! i.e. "did the snapshot I just recorded regress against the previous
//! baseline?". Exits 1 if any group's throughput fell by more than the
//! gate factor (default 2x; override with `GEX_BENCHDIFF_GATE`).
//!
//! The comparison is thread-count aware: when both snapshots were
//! recorded with the same worker count the threaded `sim_cycles_per_sec`
//! columns are compared, otherwise the serial columns (always one
//! worker, hence always an equal-thread-count basis) are used, derived
//! from `sim_cycles / serial_ms` for snapshots that predate the explicit
//! field. `GEX_BENCHDIFF_BASIS=serial|threaded` overrides the automatic
//! choice (CI pins the serial basis for no-serial-regression gates and
//! the threaded basis for threading-win gates).
//!
//! `GEX_BENCHDIFF_MIN=R` additionally *requires* an improvement: any
//! gated group whose ratio falls below `R` fails the diff. Restrict the
//! requirement to specific groups with a comma-separated
//! `GEX_BENCHDIFF_MIN_GROUPS=fig10,fig11` (default: all groups). CI uses
//! this to pin optimization PRs to their claimed speedup.
//!
//! `GEX_BENCHDIFF_SCALING_MIN=t2:1.5,t4:2.5` gates the *new* snapshot's
//! recorded scaling columns (`t<n>_speedup`, written by `perfstat
//! --threads 1,2,4`): each group carrying a `t<n>` column must reach the
//! required serial-over-threaded speedup. A requirement only binds when
//! the snapshot's recorded `host_cores` is at least `n` — on a smaller
//! host real scaling is physically impossible, so the requirement relaxes
//! to `GEX_BENCHDIFF_SCALING_FLOOR` (default 0.9: threading may not *tax*
//! the sweep by more than ~10% even when it cannot win).
//!
//! `GEX_BENCHDIFF_SM_SCALING_MIN=smt2:1.2` gates the `smt<n>_speedup`
//! columns the same way (written by `perfstat --sm-threads 2,...`): the
//! serial-over-SM-threaded speedup of the intra-run two-phase tick. The
//! same `host_cores >= n` condition applies, but the undersized-host
//! relaxation has its own knob, `GEX_BENCHDIFF_SM_SCALING_FLOOR`
//! (default 0.25): intra-run workers fork and join every simulated
//! cycle, so on a host without real cores they are a genuine tax, not
//! the ~10% bound that coarse point-level threading gets away with.
//!
//! Groups present in only one snapshot are reported but never gate — a
//! renamed or added figure must not fail CI. Exits 0 with a notice when
//! fewer than two snapshots exist (first run of a fresh repo).

use gex_bench::perfstat::{
    parse_snapshot, parse_snapshot_host_cores, parse_snapshot_threads, snapshot_files,
    GroupSnapshot,
};
use gex_bench::BenchArgs;
use std::path::PathBuf;

fn load(path: &PathBuf) -> (Vec<GroupSnapshot>, Option<u64>, Option<u64>) {
    match std::fs::read_to_string(path) {
        Ok(s) => (parse_snapshot(&s), parse_snapshot_threads(&s), parse_snapshot_host_cores(&s)),
        Err(e) => {
            eprintln!("benchdiff: cannot read {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Parse `GEX_BENCHDIFF_SCALING_MIN`: comma-separated `t<n>:<min>` (the
/// `t` is optional) requirements on the new snapshot's scaling columns.
fn scaling_requirements() -> Vec<(u64, f64)> {
    requirements_from("GEX_BENCHDIFF_SCALING_MIN", "t")
}

/// Parse `GEX_BENCHDIFF_SM_SCALING_MIN`: comma-separated `smt<n>:<min>`
/// (the `smt` is optional) requirements on the `smt<n>_speedup` columns.
fn sm_scaling_requirements() -> Vec<(u64, f64)> {
    requirements_from("GEX_BENCHDIFF_SM_SCALING_MIN", "smt")
}

fn requirements_from(var: &str, prefix: &str) -> Vec<(u64, f64)> {
    let Ok(spec) = std::env::var(var) else {
        return Vec::new();
    };
    spec.split(',')
        .filter_map(|entry| {
            let (t, min) = entry.trim().split_once(':')?;
            let t = t.trim();
            let t = t.strip_prefix(prefix).unwrap_or(t).parse().ok()?;
            let min = min.trim().parse().ok()?;
            Some((t, min))
        })
        .collect()
}

fn main() {
    let args = BenchArgs::parse();
    let gate: f64 = std::env::var("GEX_BENCHDIFF_GATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);

    // Positional paths must look like files, not preset names.
    let explicit: Vec<PathBuf> = args
        .positional
        .iter()
        .filter(|p| p.ends_with(".json"))
        .map(PathBuf::from)
        .collect();
    let (old_path, new_path) = if explicit.len() >= 2 {
        (explicit[0].clone(), explicit[1].clone())
    } else {
        let dir = PathBuf::from(args.out.as_deref().unwrap_or("."));
        let files = snapshot_files(&dir);
        if files.len() < 2 {
            println!(
                "benchdiff: {} snapshot(s) in {} — need two to compare, passing",
                files.len(),
                dir.display()
            );
            return;
        }
        (files[files.len() - 2].1.clone(), files[files.len() - 1].1.clone())
    };

    let min_ratio: Option<f64> =
        std::env::var("GEX_BENCHDIFF_MIN").ok().and_then(|v| v.parse().ok());
    let min_groups: Vec<String> = std::env::var("GEX_BENCHDIFF_MIN_GROUPS")
        .map(|v| v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect())
        .unwrap_or_default();

    let (old, old_threads, _) = load(&old_path);
    let (new, new_threads, new_cores) = load(&new_path);
    // Equal recorded worker counts → compare the threaded columns;
    // otherwise fall back to the serial columns, which are always a
    // one-worker-vs-one-worker comparison. GEX_BENCHDIFF_BASIS pins the
    // choice either way.
    let (use_serial, basis_label) = match std::env::var("GEX_BENCHDIFF_BASIS").as_deref() {
        Ok("serial") => (true, "serial (pinned)"),
        Ok("threaded") => (false, "threaded (pinned)"),
        _ => match (old_threads, new_threads) {
            (Some(a), Some(b)) if a != b => (true, "serial (thread counts differ)"),
            _ => (false, "threaded"),
        },
    };
    println!(
        "benchdiff: {} -> {} (gate: fail below 1/{gate:.1}x{}; {} basis)",
        old_path.display(),
        new_path.display(),
        min_ratio.map_or(String::new(), |m| format!(", require >= {m:.2}x")),
        basis_label,
    );

    let col = |g: &GroupSnapshot| {
        if use_serial {
            g.serial_sim_cycles_per_sec.unwrap_or(g.sim_cycles_per_sec)
        } else {
            g.sim_cycles_per_sec
        }
    };

    let mut failed = false;
    for n in &new {
        let Some(o) = old.iter().find(|o| o.id == n.id) else {
            println!("{:<8} new group ({:>12.0} sim-cyc/s), not gated", n.id, col(n));
            continue;
        };
        if col(o) <= 0.0 {
            println!("{:<8} old throughput is zero, not gated", n.id);
            continue;
        }
        let ratio = col(n) / col(o);
        let min_applies =
            min_ratio.is_some() && (min_groups.is_empty() || min_groups.iter().any(|g| g == &n.id));
        let verdict = if ratio * gate < 1.0 {
            failed = true;
            "REGRESSION"
        } else if min_applies && ratio < min_ratio.unwrap() {
            failed = true;
            "BELOW REQUIRED MINIMUM"
        } else {
            "ok"
        };
        println!(
            "{:<8} {:>12.0} -> {:>12.0} sim-cyc/s ({:>6.2}x)  {verdict}",
            n.id,
            col(o),
            col(n),
            ratio
        );
    }
    for o in &old {
        if !new.iter().any(|n| n.id == o.id) {
            println!("{:<8} dropped from the new snapshot, not gated", o.id);
        }
    }

    // Scaling gates over the new snapshot's recorded speedup columns:
    // t<n> (sweep workers) and smt<n> (intra-run SM workers) share the
    // same host-core relaxation and per-group filtering.
    struct Gate {
        label: &'static str,
        requirements: Vec<(u64, f64)>,
        columns: fn(&GroupSnapshot) -> &[(u64, f64)],
        floor: f64,
    }
    let floor_from = |var: &str, default: f64| -> f64 {
        std::env::var(var).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
    };
    let gates = [
        Gate {
            label: "t",
            requirements: scaling_requirements(),
            columns: |g| &g.scaling,
            floor: floor_from("GEX_BENCHDIFF_SCALING_FLOOR", 0.9),
        },
        Gate {
            label: "smt",
            requirements: sm_scaling_requirements(),
            columns: |g| &g.sm_scaling,
            floor: floor_from("GEX_BENCHDIFF_SM_SCALING_FLOOR", 0.25),
        },
    ];
    let cores = new_cores.unwrap_or(1);
    for Gate { label, requirements, columns, floor } in &gates {
        for &(t, min) in requirements {
            // A t-worker speedup requirement is only achievable with t
            // cores; on a smaller host, require only that threading does
            // not tax the sweep (the floor).
            let (required, basis) = if cores >= t {
                (min, "required")
            } else {
                (*floor, "host too small, floor")
            };
            for n in &new {
                let min_applies =
                    min_groups.is_empty() || min_groups.iter().any(|g| g == &n.id);
                let Some(&(_, speedup)) = columns(n).iter().find(|&&(st, _)| st == t) else {
                    if min_applies {
                        println!(
                            "{:<8} {label}{t}: no scaling column recorded, not gated",
                            n.id
                        );
                    }
                    continue;
                };
                if !min_applies {
                    continue;
                }
                let verdict = if speedup < required {
                    failed = true;
                    "BELOW REQUIRED SCALING"
                } else {
                    "ok"
                };
                println!(
                    "{:<8} {label}{t}: {speedup:.2}x (>= {required:.2}x, {basis}; host_cores {cores})  {verdict}",
                    n.id
                );
            }
        }
    }

    if failed {
        eprintln!("benchdiff: throughput gate failed");
        std::process::exit(1);
    }
}
