//! Thread-block switching on fault (use case 1, Section 4.1).
//!
//! This module holds the local scheduler's configuration and per-SM state;
//! the decision/drain/save/restore machinery is driven by
//! [`Gpu`](crate::gpu::Gpu) each cycle:
//!
//! 1. On a fault notice whose queue position is at or above the threshold,
//!    the block starts draining.
//! 2. Once drained, its context (registers, shared memory, control state,
//!    replay-queue and operand-log contents) streams to memory through the
//!    DRAM channel; the *ideal* variant saves and restores in one cycle
//!    (the comparison of Figure 12).
//! 3. The freed slot runs an off-chip block whose faults have resolved, or
//!    a fresh block from the global scheduler — limited to
//!    `max_extra_blocks` extra blocks per SM to bound the off-chip context
//!    memory, after which the SM only cycles through its own blocks.

use gex_mem::Cycle;
use gex_sm::SavedBlock;

/// Local-scheduler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSwitchConfig {
    /// Switch out only if the fault's position in the global pending-fault
    /// queue is at least this (a long expected wait).
    pub queue_pos_threshold: u32,
    /// Extra blocks an SM may bring beyond its occupancy (paper: 4).
    pub max_extra_blocks: u32,
    /// Ideal 1-cycle save and restore (Figure 12's idealized variant).
    pub ideal: bool,
}

impl Default for BlockSwitchConfig {
    /// Threshold 1: switch only when the fault queue shows backlog.
    /// Threshold 0 (switch on every fault) thrashes on kernels that fault
    /// often in small trickles (the context traffic then competes with
    /// demand traffic on the DRAM channel) — the waste the paper's
    /// threshold exists to avoid; the `ablation` binary sweeps it.
    fn default() -> Self {
        BlockSwitchConfig { queue_pos_threshold: 1, max_extra_blocks: 4, ideal: false }
    }
}

impl BlockSwitchConfig {
    /// The idealized variant with 1-cycle context save/restore.
    pub fn ideal() -> Self {
        BlockSwitchConfig { ideal: true, ..Default::default() }
    }
}

/// Per-SM local-scheduler state.
#[derive(Debug, Default)]
pub struct LocalScheduler {
    /// Slots currently draining for a switch.
    pub draining: Vec<u32>,
    /// Contexts streaming out: (transfer done, state).
    pub saving: Vec<(Cycle, SavedBlock)>,
    /// Contexts streaming back in: (transfer done, state).
    pub restoring: Vec<(Cycle, SavedBlock)>,
    /// Preempted blocks resident in memory.
    pub off_chip: Vec<SavedBlock>,
    /// Extra blocks brought from the global scheduler so far.
    pub extra_brought: u32,
}

impl LocalScheduler {
    /// Fresh state.
    pub fn new() -> Self {
        LocalScheduler::default()
    }

    /// Reset to fresh state keeping the vector allocations — the
    /// arena-reuse path between sweep points.
    pub fn reset(&mut self) {
        self.draining.clear();
        self.saving.clear();
        self.restoring.clear();
        self.off_chip.clear();
        self.extra_brought = 0;
    }

    /// Block-slot capacity consumed by switching machinery (contexts in
    /// transit occupy their slots' register file and shared memory).
    pub fn slots_in_transit(&self) -> u32 {
        (self.saving.len() + self.restoring.len()) as u32
    }

    /// True if some off-chip block has all its faults resolved.
    pub fn has_restorable(&self) -> bool {
        self.off_chip.iter().any(|b| !b.has_pending_fault())
    }

    /// Take the first restorable off-chip block.
    pub fn pop_restorable(&mut self) -> Option<SavedBlock> {
        let i = self.off_chip.iter().position(|b| !b.has_pending_fault())?;
        Some(self.off_chip.remove(i))
    }

    /// Propagate a resolved fault region to blocks held off-chip or in
    /// transit.
    pub fn resolve_region(&mut self, region: u64) {
        for b in &mut self.off_chip {
            b.resolve_region(region);
        }
        for (_, b) in &mut self.saving {
            b.resolve_region(region);
        }
        for (_, b) in &mut self.restoring {
            b.resolve_region(region);
        }
    }

    /// True if nothing is in transit and nothing is held off-chip.
    pub fn quiescent(&self) -> bool {
        self.draining.is_empty()
            && self.saving.is_empty()
            && self.restoring.is_empty()
            && self.off_chip.is_empty()
    }

    /// Earliest transfer completion, for skip-ahead.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.saving
            .iter()
            .map(|&(c, _)| c)
            .chain(self.restoring.iter().map(|&(c, _)| c))
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let c = BlockSwitchConfig::default();
        assert_eq!(c.max_extra_blocks, 4, "paper: 4 extra blocks per SM");
        assert_eq!(c.queue_pos_threshold, 1);
        assert!(!c.ideal);
        assert!(BlockSwitchConfig::ideal().ideal);
    }

    #[test]
    fn empty_scheduler_is_quiescent() {
        let s = LocalScheduler::new();
        assert!(s.quiescent());
        assert!(!s.has_restorable());
        assert_eq!(s.slots_in_transit(), 0);
        assert_eq!(s.next_event_cycle(), None);
    }
}
