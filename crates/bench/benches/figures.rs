//! Criterion benches: one group per table/figure of the paper.
//!
//! Each group times the experiment that regenerates the corresponding
//! result at the `Test` preset (the harness binaries run the full `Paper`
//! preset); traces are built once outside the measurement loop, so the
//! benches time the cycle-level simulation itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gex::workloads::{suite, Preset, Workload};
use gex::{
    BlockSwitchConfig, Gpu, GpuConfig, GpuRunReport, Interconnect, LocalFaultConfig, PagingMode,
    Scheme,
};

fn run(w: &Workload, scheme: Scheme, paging: PagingMode, sms: u32) -> GpuRunReport {
    // AllResident ignores the residency; demand modes use the Figure 12
    // placement (inputs CPU-dirty, outputs CPU-clean).
    Gpu::new(GpuConfig::kepler_k20().with_sms(sms), scheme, paging)
        .run(&w.trace, &w.demand_residency())
}

/// Figure 10: normalized performance of the preemptible pipelines.
fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    for name in ["sgemm", "lbm", "histo", "stencil"] {
        let w = suite::by_name(name, Preset::Test).expect("known workload");
        g.bench_with_input(BenchmarkId::new("scheme_sweep", name), &w, |b, w| {
            b.iter(|| {
                let base = run(w, Scheme::Baseline, PagingMode::AllResident, 2).cycles;
                let wd = run(w, Scheme::WdCommit, PagingMode::AllResident, 2).cycles;
                let rq = run(w, Scheme::ReplayQueue, PagingMode::AllResident, 2).cycles;
                assert!(base <= wd.max(rq) || base <= wd.min(rq) + base);
                (base, wd, rq)
            })
        });
    }
    g.finish();
}

/// Figure 11: operand-log sizes on the log-sensitive benchmark.
fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    let w = suite::by_name("lbm", Preset::Test).expect("lbm");
    for kib in [8u32, 16, 32] {
        g.bench_with_input(BenchmarkId::new("operand_log", kib), &w, |b, w| {
            b.iter(|| run(w, Scheme::operand_log_kib(kib), PagingMode::AllResident, 2).cycles)
        });
    }
    g.finish();
}

/// Figure 12: block switching vs plain demand paging.
fn bench_fig12(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12");
    g.sample_size(10);
    let w = suite::by_name("sgemm", Preset::Test).expect("sgemm");
    let ic = Interconnect::nvlink();
    g.bench_function("demand_plain", |b| {
        b.iter(|| {
            Gpu::new(GpuConfig::kepler_k20().with_sms(4), Scheme::ReplayQueue, PagingMode::demand(ic))
                .run(&w.trace, &w.demand_residency())
                .cycles
        })
    });
    g.bench_function("demand_switching", |b| {
        b.iter(|| {
            Gpu::new(
                GpuConfig::kepler_k20().with_sms(4),
                Scheme::ReplayQueue,
                PagingMode::Demand {
                    interconnect: ic,
                    block_switch: Some(BlockSwitchConfig::default()),
                    local_handling: None,
                },
            )
            .run(&w.trace, &w.demand_residency())
            .cycles
        })
    });
    g.finish();
}

/// Figure 13: local handling of malloc-backed faults.
fn bench_fig13(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13");
    g.sample_size(10);
    let w = gex::workloads::halloc::fixed(Preset::Test);
    let ic = Interconnect::pcie();
    g.bench_function("cpu_handled", |b| {
        b.iter(|| {
            Gpu::new(GpuConfig::kepler_k20().with_sms(4), Scheme::ReplayQueue, PagingMode::demand(ic))
                .run(&w.trace, &w.heap_lazy_residency())
                .cycles
        })
    });
    g.bench_function("gpu_local", |b| {
        b.iter(|| {
            Gpu::new(
                GpuConfig::kepler_k20().with_sms(4),
                Scheme::ReplayQueue,
                PagingMode::Demand {
                    interconnect: ic,
                    block_switch: None,
                    local_handling: Some(LocalFaultConfig::default()),
                },
            )
            .run(&w.trace, &w.heap_lazy_residency())
            .cycles
        })
    });
    g.finish();
}

/// Figure 14: local handling of output-page faults.
fn bench_fig14(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14");
    g.sample_size(10);
    let w = suite::by_name("histo", Preset::Test).expect("histo");
    let ic = Interconnect::pcie();
    for (label, local) in [("cpu_handled", None), ("gpu_local", Some(LocalFaultConfig::default()))]
    {
        g.bench_with_input(BenchmarkId::new("outputs_lazy", label), &local, |b, local| {
            b.iter(|| {
                Gpu::new(
                    GpuConfig::kepler_k20().with_sms(4),
                    Scheme::ReplayQueue,
                    PagingMode::Demand {
                        interconnect: ic,
                        block_switch: None,
                        local_handling: *local,
                    },
                )
                .run(&w.trace, &w.outputs_lazy_residency())
                .cycles
            })
        });
    }
    g.finish();
}

/// Tables 1 and 2 render from live models; timing them pins the power
/// model's cost (trivial) and keeps the renderers exercised.
fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.bench_function("table1_render", |b| b.iter(gex::experiments::table1));
    g.bench_function("table2_render", |b| b.iter(gex::experiments::table2));
    g.finish();
}

criterion_group!(
    figures,
    bench_fig10,
    bench_fig11,
    bench_fig12,
    bench_fig13,
    bench_fig14,
    bench_tables
);
criterion_main!(figures);
