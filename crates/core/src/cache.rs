//! Cross-sweep simulation result cache.
//!
//! Figure campaigns share simulation points: every operand-log point in
//! fig11 normalizes against the same stall-on-fault baseline fig10
//! already simulated, `normalized_performance` re-runs the baseline per
//! call, and a scalability sweep replays whole grids per SM count. The
//! simulator is deterministic — a `(workload, scheme, GPU config, paging,
//! residency, injection plan)` tuple always produces the same
//! [`GpuRunReport`] — so this module memoizes completed runs
//! process-wide and hands out shared [`Arc`]s instead of re-simulating.
//!
//! Design points:
//!
//! * **Keyed by simulation identity only.** The key digests everything
//!   that determines the report and nothing that doesn't: run budgets
//!   (wall clocks, deadlines, cancel tokens) are supervision policy, not
//!   physics, so a point simulated under one budget answers every later
//!   budget. Under [`PagingMode::AllResident`] the engine pre-maps every
//!   touched page and ignores the residency argument, so the key omits
//!   it there — the drivers' shared empty residency and the facade's
//!   per-workload residency hit the same entry.
//! * **Only successful runs are cached.** Errors depend on the budget
//!   (deadlines) or wall clock and must re-run.
//! * **Concurrent-builder coalescing.** The cache is shared through the
//!   `gex-exec` pool; when two workers want the same uncached point, one
//!   simulates and the other waits on the entry instead of duplicating
//!   the work. A failed build wakes waiters to try themselves.
//! * **Observable.** Global [`stats`] counters (hits, misses, stores,
//!   coalesced waits) let sweeps report how much simulation the cache
//!   saved; the supervised figure drivers surface the per-campaign delta.
//! * **A/B switchable.** `GEX_SIM_CACHE=0` (or [`set_enabled`]`(false)`)
//!   bypasses the cache entirely for equivalence testing; results must
//!   be byte-identical either way.

use crate::journal::digest;
use gex_sim::{Gpu, GpuRunReport, PagingMode, Residency, SimError};
use gex_workloads::Workload;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One entry's lifecycle inside a shard.
enum Slot {
    /// A worker is simulating this point right now.
    Building,
    /// The finished report.
    Ready(Arc<GpuRunReport>),
}

/// One lock-sharded slice of the cache. Waiters for in-flight builds
/// park on the shard's condvar (builds are long; shard-granular wakeups
/// are plenty).
#[derive(Default)]
struct Shard {
    map: Mutex<HashMap<String, Slot>>,
    ready: Condvar,
}

const SHARDS: usize = 16;

struct Cache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    coalesced: AtomicU64,
}

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Cache {
        shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        stores: AtomicU64::new(0),
        coalesced: AtomicU64::new(0),
    })
}

/// 0 = unset (consult `GEX_SIM_CACHE`), 1 = forced on, 2 = forced off.
static ENABLED_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force the cache on or off for this process, overriding
/// `GEX_SIM_CACHE`. The A/B switch for equivalence tests.
pub fn set_enabled(on: bool) {
    ENABLED_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// True if [`run_cached`] consults the cache: on by default, disabled by
/// `GEX_SIM_CACHE=0` in the environment or [`set_enabled`]`(false)`.
pub fn enabled() -> bool {
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => std::env::var("GEX_SIM_CACHE").map_or(true, |v| v != "0"),
    }
}

/// Monotonic process-wide cache counters; snapshot via [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a finished entry.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Reports inserted (misses that simulated successfully).
    pub stores: u64,
    /// Hits that waited for a concurrent builder instead of finding the
    /// entry already finished (a subset of `hits`).
    pub coalesced: u64,
}

impl CacheStats {
    /// Counter increase from `earlier` to `self` — the per-campaign view
    /// the supervised drivers report.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stores: self.stores - earlier.stores,
            coalesced: self.coalesced - earlier.coalesced,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s) ({} coalesced), {} miss(es), {} stored",
            self.hits, self.coalesced, self.misses, self.stores
        )
    }
}

/// Snapshot the process-wide cache counters.
pub fn stats() -> CacheStats {
    let c = cache();
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        stores: c.stores.load(Ordering::Relaxed),
        coalesced: c.coalesced.load(Ordering::Relaxed),
    }
}

/// Number of finished reports currently held.
pub fn len() -> usize {
    cache().shards.iter().map(|s| s.map.lock().unwrap().len()).sum()
}

/// Drop every cached report (counters keep running). Long multi-preset
/// campaigns can call this between phases to bound memory.
pub fn clear() {
    for s in &cache().shards {
        s.map.lock().unwrap().clear();
    }
}

/// The simulation-identity key: everything that determines the report,
/// nothing that doesn't. The workload is pinned by name + functional
/// image digest + launch geometry (construction is deterministic, so
/// these pin the exact trace); budgets are deliberately absent.
fn key_of(gpu: &Gpu, w: &Workload, residency: &Residency) -> String {
    use std::fmt::Write;
    let t = &w.trace;
    let mut k = String::with_capacity(192);
    let _ = write!(
        k,
        "w={}|img={:016x}|di={}|b={}|tpb={}|r={}|sh={}|s={:?}|cfg={:?}|p={:?}",
        w.name,
        w.image_digest,
        t.dyn_instrs(),
        t.blocks.len(),
        t.threads_per_block,
        t.regs_per_thread,
        t.shared_bytes,
        gpu.scheme(),
        gpu.config(),
        gpu.paging(),
    );
    // AllResident pre-maps every touched page and never reads the
    // residency; keying it would split identical simulations.
    if !matches!(gpu.paging(), PagingMode::AllResident) {
        let _ = write!(k, "|res={residency:?}");
    }
    if let Some(plan) = gpu.injection() {
        let _ = write!(k, "|inj={plan:?}");
    }
    k
}

/// Removes a `Building` placeholder if the builder unwinds or errors, so
/// waiters retry instead of deadlocking on a corpse.
struct BuildGuard<'a> {
    shard: &'a Shard,
    key: String,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.shard.map.lock().unwrap().remove(&self.key);
            self.shard.ready.notify_all();
        }
    }
}

/// Run `gpu` on `w`'s trace with `residency`, answering from the cache
/// when an identical point has already simulated. On a miss the caller's
/// thread simulates (under its own budget) and publishes the report for
/// everyone else. Errors are returned, never cached.
pub fn run_cached(
    gpu: &Gpu,
    w: &Workload,
    residency: &Residency,
) -> Result<Arc<GpuRunReport>, SimError> {
    if !enabled() {
        return gpu.try_run(&w.trace, residency).map(Arc::new);
    }
    let c = cache();
    let key = key_of(gpu, w, residency);
    let shard = &c.shards[(digest(&key) as usize) % SHARDS];
    {
        let mut map = shard.map.lock().unwrap();
        let mut waited = false;
        loop {
            match map.get(&key) {
                Some(Slot::Ready(r)) => {
                    c.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        c.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(Arc::clone(r));
                }
                Some(Slot::Building) => {
                    // Park until the builder publishes or gives up; if
                    // the build fails we fall through to the `None` arm
                    // and simulate ourselves.
                    waited = true;
                    map = shard.ready.wait(map).unwrap();
                }
                None => {
                    map.insert(key.clone(), Slot::Building);
                    break;
                }
            }
        }
    }
    c.misses.fetch_add(1, Ordering::Relaxed);
    let mut guard = BuildGuard { shard, key: key.clone(), armed: true };
    let report = gpu.try_run(&w.trace, residency)?;
    let report = Arc::new(report);
    guard.armed = false;
    shard.map.lock().unwrap().insert(key, Slot::Ready(Arc::clone(&report)));
    shard.ready.notify_all();
    c.stores.fetch_add(1, Ordering::Relaxed);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gex_sim::GpuConfig;
    use gex_sm::Scheme;
    use gex_workloads::{suite, Preset};

    // Unit tests share the process-global cache with each other, so they
    // assert via counter deltas and distinct keys only; the end-to-end
    // behaviour (hit identity, figure equivalence, fig11 baseline
    // sharing) lives in `tests/cache_equivalence.rs`, its own process.

    #[test]
    fn identical_points_share_one_simulation() {
        let w = suite::by_name("histo", Preset::Test).unwrap();
        let gpu =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::WdCommit, PagingMode::AllResident);
        let res = Residency::new();
        let before = stats();
        let a = run_cached(&gpu, &w, &res).unwrap();
        let b = run_cached(&gpu, &w, &res).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "a hit must share the stored report");
        let d = stats().since(&before);
        assert_eq!((d.hits, d.misses, d.stores), (1, 1, 1));
    }

    #[test]
    fn all_resident_key_ignores_the_residency_argument() {
        let w = suite::by_name("sad", Preset::Test).unwrap();
        let gpu =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::Baseline, PagingMode::AllResident);
        assert_eq!(key_of(&gpu, &w, &Residency::new()), key_of(&gpu, &w, &w.demand_residency()));
    }

    #[test]
    fn key_separates_scheme_config_and_injection() {
        let w = suite::by_name("sad", Preset::Test).unwrap();
        let res = Residency::new();
        let base =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::Baseline, PagingMode::AllResident);
        let other_scheme =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::WdCommit, PagingMode::AllResident);
        let other_sms =
            Gpu::new(GpuConfig::kepler_k20().with_sms(4), Scheme::Baseline, PagingMode::AllResident);
        let injected = base.clone().inject(gex_sim::InjectionPlan::light(7));
        let k = key_of(&base, &w, &res);
        assert_ne!(k, key_of(&other_scheme, &w, &res));
        assert_ne!(k, key_of(&other_sms, &w, &res));
        assert_ne!(k, key_of(&injected, &w, &res));
    }

    #[test]
    fn stats_since_subtracts_fieldwise() {
        let a = CacheStats { hits: 5, misses: 3, stores: 2, coalesced: 1 };
        let b = CacheStats { hits: 7, misses: 4, stores: 3, coalesced: 1 };
        assert_eq!(b.since(&a), CacheStats { hits: 2, misses: 1, stores: 1, coalesced: 0 });
        assert!(b.to_string().contains("7 hit(s)"));
    }
}
