//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. the local scheduler's fault-queue-position threshold and extra-block
//!    budget (Section 4.1's "set threshold" and "4 additional blocks");
//! 2. operand-log capacity beyond the paper's four studied sizes;
//! 3. the GPU-local handler latency (the paper measured ~20 us on a
//!    prototype; how sensitive is use case 2 to it?);
//! 4. the issue-stage warp scheduler (loose round-robin vs
//!    greedy-then-oldest) under each exception scheme.
//!
//! Every panel runs under sweep supervision ([`gex::run_supervised`]):
//! `--deadline N` budgets each point, `--resume` / `--journal PATH` make
//! the campaign resumable (one journal file per panel), and failed points
//! print as `NaN` with a quarantine report instead of taking the whole
//! run down. Each panel's reference point (plain / baseline / CPU-handled)
//! rides in its grid, so even the normalizer is supervised. Exits 2 if
//! anything was quarantined.

use gex::journal::digest;
use gex::sm::config::SchedulerPolicy;
use gex::workloads::{halloc, suite};
use gex::{
    run_supervised, BlockSwitchConfig, CampaignJournal, Gpu, GpuConfig, Interconnect,
    LocalFaultConfig, PagingMode, QuarantineReport, Scheme, SweepOptions, SweepOutcome,
};
use std::collections::HashMap;
use std::sync::Mutex;

/// Open the panel's journal, keyed by a digest of its identity plus the
/// ordered point grid (the same contract as the figure drivers).
fn journal(opts: &SweepOptions, campaign: &str, keys: &[String]) -> Option<CampaignJournal> {
    let path = opts.journal.as_ref()?;
    let d = digest(&format!("{campaign}|{}", keys.join(",")));
    match CampaignJournal::open(path, d) {
        Ok(j) => Some(j),
        Err(e) => {
            eprintln!("warning: journal {} unusable ({e}); running without resume", path.display());
            None
        }
    }
}

/// `num/den` as `f64`, `NaN` when either point was quarantined.
fn ratio(num: Option<u64>, den: Option<u64>) -> f64 {
    match (num, den) {
        (Some(n), Some(d)) => n as f64 / d as f64,
        _ => f64::NAN,
    }
}

/// Fold a panel's quarantine into the run-wide report, prefixing keys.
fn absorb(total: &mut QuarantineReport, panel: &str, out: &SweepOutcome) {
    for r in &out.quarantine.records {
        let mut r = r.clone();
        r.key = format!("{panel}/{}", r.key);
        total.records.push(r);
    }
}

fn main() {
    let args = gex_bench::BenchArgs::parse();
    args.apply_max_cycles();
    let preset = args.preset();
    let sms = gex_bench::sms_from_env();
    let cfg = GpuConfig::kepler_k20().with_sms(sms);
    let mut quarantine = QuarantineReport::default();

    // ---- 1. block-switching policy sweep on sgemm (NVLink) ----
    let w = suite::by_name("sgemm", preset).expect("sgemm");
    let res = w.demand_residency();
    let ic = Interconnect::nvlink();
    let grid: Vec<Option<(u32, u32)>> = std::iter::once(None)
        .chain(
            [0u32, 1, 2, 4, 8]
                .iter()
                .flat_map(|&t| [2u32, 4, 8].iter().map(move |&m| Some((t, m)))),
        )
        .collect();
    let points: Vec<(String, Option<(u32, u32)>)> = grid
        .iter()
        .map(|p| match p {
            None => ("plain".to_string(), None),
            Some((t, m)) => (format!("t{t}/m{m}"), Some((*t, *m))),
        })
        .collect();
    let keys: Vec<String> = points.iter().map(|(k, _)| k.clone()).collect();
    let opts = args.sweep_options_panel("ablation", "blockswitch");
    let j = journal(&opts, &format!("ablation-blockswitch|{preset:?}|sms={sms}"), &keys);
    // Switch counts ride outside the journal (it records cycles only), so
    // resumed points print "-" in that column.
    let switches: Mutex<HashMap<String, u64>> = Mutex::new(HashMap::new());
    let out = run_supervised(points, &opts.policy, j.as_ref(), |p, budget| {
        let paging = match p {
            None => PagingMode::demand(ic),
            Some((threshold, max_extra)) => PagingMode::Demand {
                interconnect: ic,
                block_switch: Some(BlockSwitchConfig {
                    queue_pos_threshold: *threshold,
                    max_extra_blocks: *max_extra,
                    ideal: false,
                }),
                local_handling: None,
            },
        };
        let r = Gpu::new(cfg.clone(), Scheme::ReplayQueue, paging)
            .budget(budget.clone())
            .try_run(&w.trace, &res)?;
        let key = match p {
            None => "plain".to_string(),
            Some((t, m)) => format!("t{t}/m{m}"),
        };
        switches.lock().unwrap().insert(key, r.switches);
        Ok(r.cycles)
    });
    let plain = out.values[0];
    println!(
        "Ablation 1: block-switching policy on sgemm ({ic}, plain = {} cycles)",
        plain.map_or_else(|| "NaN".to_string(), |c| c.to_string())
    );
    println!("{:<12} {:<12} {:>9} {:>9}", "threshold", "max-extra", "speedup", "switches");
    let switches = switches.into_inner().unwrap();
    for (i, p) in grid.iter().enumerate().skip(1) {
        let (t, m) = p.expect("grid points after the reference");
        let sw = switches
            .get(&format!("t{t}/m{m}"))
            .map_or_else(|| "-".to_string(), |s| s.to_string());
        println!("{:<12} {:<12} {:>9.3} {:>9}", t, m, ratio(plain, out.values[i]), sw);
    }
    absorb(&mut quarantine, "blockswitch", &out);

    // ---- 2. operand-log capacity sweep on lbm ----
    let w = suite::by_name("lbm", preset).expect("lbm");
    let res = w.demand_residency();
    let sizes = [4u32, 8, 12, 16, 20, 24, 32, 48, 64];
    let points: Vec<(String, Option<u32>)> = std::iter::once(("baseline".to_string(), None))
        .chain(sizes.iter().map(|&kib| (format!("{kib}kib"), Some(kib))))
        .collect();
    let keys: Vec<String> = points.iter().map(|(k, _)| k.clone()).collect();
    let opts = args.sweep_options_panel("ablation", "oplog");
    let j = journal(&opts, &format!("ablation-oplog|{preset:?}|sms={sms}"), &keys);
    let out = run_supervised(points, &opts.policy, j.as_ref(), |p, budget| {
        let scheme = match p {
            None => Scheme::Baseline,
            Some(kib) => Scheme::OperandLog { bytes: kib * 1024 },
        };
        Gpu::new(cfg.clone(), scheme, PagingMode::AllResident)
            .budget(budget.clone())
            .try_run(&w.trace, &res)
            .map(|r| r.cycles)
    });
    let base = out.values[0];
    println!(
        "\nAblation 2: operand log capacity on lbm (baseline = {} cycles)",
        base.map_or_else(|| "NaN".to_string(), |c| c.to_string())
    );
    println!("{:<10} {:>12} {:>12}", "log KiB", "normalized", "gpu area %");
    for (i, kib) in sizes.iter().enumerate() {
        let o = gex::power::operand_log_overheads(kib * 1024);
        println!(
            "{:<10} {:>12.3} {:>12.2}",
            kib,
            ratio(base, out.values[i + 1]),
            o.gpu_area_pct
        );
    }
    absorb(&mut quarantine, "oplog", &out);

    // ---- 3. GPU-local handler latency sweep on halloc-fixed (PCIe) ----
    let w = halloc::fixed(preset);
    let res = w.heap_lazy_residency();
    let ic = Interconnect::pcie();
    let lats = [5u64, 10, 20, 40, 80];
    let points: Vec<(String, Option<u64>)> = std::iter::once(("cpu".to_string(), None))
        .chain(lats.iter().map(|&us| (format!("{us}us"), Some(us))))
        .collect();
    let keys: Vec<String> = points.iter().map(|(k, _)| k.clone()).collect();
    let opts = args.sweep_options_panel("ablation", "locallat");
    let j = journal(&opts, &format!("ablation-locallat|{preset:?}|sms={sms}"), &keys);
    let out = run_supervised(points, &opts.policy, j.as_ref(), |p, budget| {
        let paging = match p {
            None => PagingMode::demand(ic),
            Some(us) => PagingMode::Demand {
                interconnect: ic,
                block_switch: None,
                local_handling: Some(LocalFaultConfig { handler_cycles: us * 1000 }),
            },
        };
        Gpu::new(cfg.clone(), Scheme::ReplayQueue, paging)
            .budget(budget.clone())
            .try_run(&w.trace, &res)
            .map(|r| r.cycles)
    });
    let cpu_handled = out.values[0];
    println!(
        "\nAblation 3: local-handler latency on halloc-fixed ({ic}, CPU-handled = {} cycles)",
        cpu_handled.map_or_else(|| "NaN".to_string(), |c| c.to_string())
    );
    println!("{:<14} {:>9}", "handler us", "speedup");
    for (i, us) in lats.iter().enumerate() {
        println!("{:<14} {:>9.3}", us, ratio(cpu_handled, out.values[i + 1]));
    }
    absorb(&mut quarantine, "locallat", &out);

    // ---- 4. warp scheduler policy per scheme on lbm (scheme-sensitive) ----
    let w = suite::by_name("lbm", preset).expect("lbm");
    let res = w.demand_residency();
    println!("\nAblation 4: warp scheduler policy on lbm (cycles)");
    println!("{:<16} {:>12} {:>12}", "scheme", "loose-rr", "greedy");
    const SCHEMES: [Scheme; 3] = [Scheme::Baseline, Scheme::WdCommit, Scheme::ReplayQueue];
    const POLICIES: [SchedulerPolicy; 2] =
        [SchedulerPolicy::LooseRoundRobin, SchedulerPolicy::GreedyThenOldest];
    let points: Vec<(String, (Scheme, SchedulerPolicy))> = SCHEMES
        .iter()
        .flat_map(|&s| POLICIES.iter().map(move |&p| (format!("{s}/{p:?}"), (s, p))))
        .collect();
    let keys: Vec<String> = points.iter().map(|(k, _)| k.clone()).collect();
    let opts = args.sweep_options_panel("ablation", "warpsched");
    let j = journal(&opts, &format!("ablation-warpsched|{preset:?}|sms={sms}"), &keys);
    let out = run_supervised(points, &opts.policy, j.as_ref(), |(scheme, policy), budget| {
        let mut c = cfg.clone();
        c.sm.scheduler = *policy;
        Gpu::new(c, *scheme, PagingMode::AllResident)
            .budget(budget.clone())
            .try_run(&w.trace, &res)
            .map(|r| r.cycles)
    });
    let cell = |v: Option<u64>| v.map_or_else(|| "NaN".to_string(), |c| c.to_string());
    for (i, scheme) in SCHEMES.iter().enumerate() {
        println!(
            "{:<16} {:>12} {:>12}",
            scheme.to_string(),
            cell(out.values[i * POLICIES.len()]),
            cell(out.values[i * POLICIES.len() + 1])
        );
    }
    absorb(&mut quarantine, "warpsched", &out);

    if !quarantine.is_empty() {
        print!("{quarantine}");
        std::process::exit(2);
    }
}
