//! Arena reuse and scan-free push mode.
//!
//! Two properties the sweep hot path depends on:
//!
//! 1. **Arena equivalence** — a run that reuses the thread's recycled
//!    simulation arena (SMs, schedulers, wake queue, event heap, dispatch
//!    queue) must produce a byte-identical [`GpuRunReport`] to a run on
//!    fresh state, including after the arena was disturbed by a run of a
//!    different shape (SM count, scheme, paging mode).
//! 2. **Scan-free push mode** — in release builds, [`NextEventMode::Push`]
//!    must do *zero* full next-event scans: the O(components) scan per
//!    idle window is the cost push mode exists to avoid, and the
//!    debug-only divergence cross-check must stay compiled out.

use gex_isa::asm::Asm;
use gex_isa::func::FuncSim;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{CmpKind, CmpType};
use gex_isa::reg::{Pred, Reg};
use gex_isa::trace::KernelTrace;
use gex_sim::{BlockSwitchConfig, Gpu, GpuConfig, Interconnect, PagingMode, Residency};
use gex_sm::{NextEventMode, Scheme};

const IN: u64 = 0x100_0000;
const OUT: u64 = 0x800_0000;

/// Each block streams its own 64 KB input region (one migration fault per
/// block) and computes on it; shared memory throttles occupancy so the
/// block-switching machinery has slots to churn.
fn faulting_kernel(blocks: u32, compute_iters: u64) -> (KernelTrace, Residency) {
    let mut a = Asm::new();
    let (tid, bid, addr, v, acc, i, p) =
        (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Pred(0));
    a.flat_tid(tid);
    a.flat_ctaid(bid);
    a.mul(addr, bid, 0x1_0000u64);
    a.add(addr, addr, IN);
    a.shl_imm(v, tid, 2);
    a.add(addr, addr, v);
    a.ld_global_u32(acc, addr, 0);
    a.mov(i, 0u64);
    a.label("loop");
    a.mad(acc, acc, 5u64, 3u64);
    a.add(i, i, 1u64);
    a.setp(p, CmpKind::Lt, CmpType::U64, i, compute_iters);
    a.bra_if("loop", p, true);
    a.mul(v, bid, 0x1_0000u64);
    a.add(v, v, OUT);
    a.shl_imm(i, tid, 2);
    a.add(v, v, i);
    a.st_global_u32(v, acc, 0);
    a.exit();
    let k = KernelBuilder::new("arena_probe", a.assemble().unwrap())
        .grid(Dim3::x(blocks))
        .block(Dim3::x(128))
        .regs_per_thread(32)
        .shared_bytes(16_384)
        .build()
        .unwrap();
    let mut img = MemImage::new();
    for b in 0..blocks as u64 {
        for t in 0..128u64 {
            img.write_u32(IN + b * 0x1_0000 + t * 4, (b * 1000 + t) as u32);
        }
    }
    let trace = FuncSim::new().run(&k, &mut img).unwrap().trace;
    let res = Residency::new()
        .cpu_dirty(IN, blocks as u64 * 0x1_0000)
        .resident(OUT, blocks as u64 * 0x1_0000);
    (trace, res)
}

fn switching_demand() -> PagingMode {
    PagingMode::Demand {
        interconnect: Interconnect::pcie(),
        block_switch: Some(BlockSwitchConfig::default()),
        local_handling: None,
    }
}

fn gpu(sms: u32, scheme: Scheme, paging: PagingMode) -> Gpu {
    // Explicit Push keeps this binary's other test (the scan-probe
    // counter check) honest: no test here may run the scan reference in
    // release builds.
    Gpu::new(GpuConfig::kepler_k20().with_sms(sms), scheme, paging)
        .max_cycles(500_000_000)
        .next_event_mode(NextEventMode::Push)
}

#[test]
fn arena_reuse_is_observably_identical_to_fresh_state() {
    let (t, res) = faulting_kernel(8, 300);
    let fresh = gpu(4, Scheme::WdCommit, switching_demand()).arena(false).run(&t, &res);

    let reusing = gpu(4, Scheme::WdCommit, switching_demand()).arena(true);
    let cold = reusing.run(&t, &res);
    let warm = reusing.run(&t, &res);
    assert_eq!(cold, fresh, "cold arena diverged from fresh state");
    assert_eq!(warm, fresh, "reused arena diverged from fresh state");

    // Disturb the arena with a different shape — more SMs, a different
    // scheme, no paging machinery — then reuse it for the original run:
    // recycle must erase every trace of the interloper (including the
    // extra SMs it grew).
    let (t2, res2) = faulting_kernel(3, 50);
    let _ = gpu(8, Scheme::ReplayQueue, PagingMode::AllResident).arena(true).run(&t2, &res2);
    let after_disturb = reusing.run(&t, &res);
    assert_eq!(after_disturb, fresh, "arena reuse leaked state across run shapes");
}

#[test]
fn push_mode_does_no_scan_work_in_release() {
    let (t, res) = faulting_kernel(6, 200);

    let push = gpu(4, Scheme::ReplayQueue, switching_demand());
    let before = gex_sim::scan_probe_count();
    let push_report = push.run(&t, &res);
    let push_probes = gex_sim::scan_probe_count() - before;
    #[cfg(not(debug_assertions))]
    assert_eq!(
        push_probes, 0,
        "release-build push mode must never touch the scan reference"
    );
    #[cfg(debug_assertions)]
    assert!(push_probes > 0, "debug builds cross-check every idle skip against the scan");

    // Sanity: the probe counter is live — the scan mode itself registers.
    let scan = gpu(4, Scheme::ReplayQueue, switching_demand())
        .next_event_mode(NextEventMode::Scan);
    let before = gex_sim::scan_probe_count();
    let scan_report = scan.run(&t, &res);
    assert!(
        gex_sim::scan_probe_count() - before > 0,
        "scan mode must register scan probes"
    );
    assert_eq!(push_report, scan_report, "push and scan modes must agree byte-for-byte");
}
