//! The `proptest!`, `prop_oneof!` and `prop_assert*!` macros.

/// Define property tests.
///
/// Mirrors proptest's surface: an optional
/// `#![proptest_config(...)]` header, then any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items. Each test
/// runs `cases` times with inputs drawn from the strategies; on
/// failure the case number, seed and generated inputs are printed
/// before the panic propagates.
#[macro_export]
macro_rules! proptest {
    // Internal: no items left.
    (@impl ($cfg:expr)) => {};
    // Internal: one test item, then recurse on the rest.
    (@impl ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __name = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cfg.cases {
                let __seed = $crate::case_seed(__name, __case);
                let mut __rng = $crate::Prng::seed_from_u64(__seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs =
                    format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| $body),
                );
                if let Err(__panic) = __result {
                    eprintln!(
                        "[gex-testkit] property {} failed at case {}/{} (seed {:#x})\n  inputs: {}",
                        __name, __case, __cfg.cases, __seed, __inputs
                    );
                    ::std::panic::resume_unwind(__panic);
                }
            }
        }
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    // Entry with a config header.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @impl ($cfg) $($rest)* }
    };
    // Entry without one: default config.
    ($($rest:tt)*) => {
        $crate::proptest! { @impl ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![$($crate::boxed($strat)),+])
    };
}

/// Assert inside a property (plain `assert!`; no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}
