//! A next-event-cycle heap for idle-skipping tick loops.
//!
//! When every warp in the machine is waiting on an external event (a DRAM
//! response, a fault round trip, a context-switch transfer), the tick
//! loops jump the clock straight to the earliest upcoming event instead
//! of crawling cycle by cycle. The original implementation recomputed
//! that minimum with a linear scan over every component per idle
//! iteration — O(SMs) per query, which is the dominant cost of idle
//! windows once SM counts grow. [`NextEventHeap`] keeps the per-source
//! next-event cycles in a priority queue with *lazy invalidation*:
//!
//! * every source (the memory system, each SM, the CPU fault handler,
//!   the GPU-local handler, each local scheduler) has a stable index;
//! * a tick loop calls [`NextEventHeap::mark_dirty`] whenever it mutates
//!   a source in a way that can change its `next_event_cycle()`;
//! * [`NextEventHeap::earliest`] re-polls *only* the dirty sources,
//!   pushes their fresh values, and pops stale heap entries on the way
//!   to the minimum — O(dirty · log n) instead of O(n).
//!
//! Stale entries (an old value for a source whose current value moved)
//! stay in the heap until they surface; an entry is trusted only if it
//! matches the source's current value. Because every current value has
//! at least one matching entry, an empty heap means no source has any
//! upcoming event — exactly the `None` of the old linear scan.
//!
//! The produced minimum is *identical* to the linear scan by
//! construction (both reduce the same per-source values), which the
//! equivalence suite locks down by running whole campaigns in both
//! [`NextEventMode`]s and asserting byte-identical reports. Budget
//! deadlines, the forward-progress watchdog and the runaway cycle cap
//! are deliberately *not* heap sources: they clamp the jump target in
//! the tick loops (exactly as before), so each still fires at its exact
//! cycle.

use gex_mem::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the tick loops find the next event cycle during idle windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NextEventMode {
    /// Push-based wake events ([`WakeQueue`]); the default. Components
    /// push their exact next wake cycle at the moment they schedule
    /// work, so an idle query is a heap peek with zero re-polls.
    #[default]
    Push,
    /// Lazy-invalidation priority queue ([`NextEventHeap`]): dirty
    /// sources are re-polled per idle query (`GEX_NEXT_EVENT=heap`).
    Heap,
    /// The original linear scan over every component per idle iteration.
    /// The reference implementation for equivalence tests, and the A/B
    /// escape hatch (`GEX_NEXT_EVENT=scan`).
    Scan,
}

impl NextEventMode {
    /// The process default: [`NextEventMode::Push`] unless the
    /// environment says `GEX_NEXT_EVENT=heap` or `GEX_NEXT_EVENT=scan`.
    pub fn from_env() -> Self {
        static MODE: std::sync::OnceLock<NextEventMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("GEX_NEXT_EVENT") {
            Ok(v) if v.eq_ignore_ascii_case("scan") => NextEventMode::Scan,
            Ok(v) if v.eq_ignore_ascii_case("heap") => NextEventMode::Heap,
            _ => NextEventMode::Push,
        })
    }
}

/// A push-based wake-event queue: the zero-re-poll counterpart of
/// [`NextEventHeap`].
///
/// Components push their *exact* next wake cycle at the moment they
/// schedule work (a DRAM transfer completing, a fault service finishing,
/// an injector retry coming due), instead of being polled during idle
/// windows. The idle query, [`WakeQueue::earliest_after`], pops entries
/// that are already in the past and peeks the rest — O(log n) per stale
/// entry, O(1) when the front is live.
///
/// Correctness rests on one invariant the tick loops uphold: **at query
/// time, every event at or before `now` has already been consumed** (the
/// components were ticked this cycle, and components only schedule
/// strictly-future events). Under that invariant an entry `<= now` is
/// necessarily stale — its event fired and was handled — so popping it
/// cannot lose a wake. Duplicate pushes for the same event are harmless:
/// the extras surface later as stale entries and are popped the same way.
#[derive(Debug, Clone, Default)]
pub struct WakeQueue {
    heap: BinaryHeap<Reverse<Cycle>>,
    /// Heap length after the last compaction; growth beyond 2x triggers
    /// the next one.
    compacted_len: usize,
}

impl WakeQueue {
    /// An empty queue.
    pub fn new() -> Self {
        WakeQueue { heap: BinaryHeap::new(), compacted_len: 0 }
    }

    /// Record that some component wakes at exactly `cycle`.
    #[inline]
    pub fn push(&mut self, cycle: Cycle) {
        self.heap.push(Reverse(cycle));
    }

    /// The earliest recorded wake strictly after `now`, discarding stale
    /// (already-consumed) entries on the way. `None` means no component
    /// has any upcoming event — matching the linear scan's `None` as
    /// long as every scheduled wake was pushed.
    pub fn earliest_after(&mut self, now: Cycle) -> Option<Cycle> {
        // Duplicate pushes can pile up future entries faster than pops
        // retire them; dedup when the heap doubles since last compaction.
        if self.heap.len() > 4096.max(self.compacted_len * 2) {
            let mut entries = std::mem::take(&mut self.heap).into_vec();
            entries.sort_unstable();
            entries.dedup();
            entries.retain(|&Reverse(c)| c > now);
            self.heap = entries.into();
            self.compacted_len = self.heap.len();
        }
        while let Some(&Reverse(c)) = self.heap.peek() {
            if c > now {
                return Some(c);
            }
            self.heap.pop();
        }
        None
    }
}

/// A min-heap over per-source next-event cycles with lazy invalidation.
#[derive(Debug, Clone)]
pub struct NextEventHeap {
    /// `(cycle, source)` entries, possibly stale.
    heap: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// The last polled value per source; the truth entries are checked
    /// against.
    current: Vec<Option<Cycle>>,
    /// Which sources need re-polling before the next query.
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
}

impl NextEventHeap {
    /// A heap over `sources` components, all initially dirty (the first
    /// [`NextEventHeap::earliest`] polls everything once).
    pub fn new(sources: usize) -> Self {
        NextEventHeap {
            heap: BinaryHeap::with_capacity(sources + 1),
            current: vec![None; sources],
            dirty: vec![true; sources],
            dirty_list: (0..sources as u32).collect(),
        }
    }

    /// Record that `source` may have a different next-event cycle than
    /// last polled. O(1); duplicate marks are absorbed.
    #[inline]
    pub fn mark_dirty(&mut self, source: usize) {
        if !self.dirty[source] {
            self.dirty[source] = true;
            self.dirty_list.push(source as u32);
        }
    }

    /// The earliest next-event cycle across all sources, re-polling only
    /// the dirty ones via `poll`. Equals
    /// `(0..sources).filter_map(poll).min()` — the old linear scan —
    /// whenever every mutated source was marked dirty.
    pub fn earliest(&mut self, mut poll: impl FnMut(u32) -> Option<Cycle>) -> Option<Cycle> {
        for s in self.dirty_list.drain(..) {
            self.dirty[s as usize] = false;
            let fresh = poll(s);
            if fresh != self.current[s as usize] {
                self.current[s as usize] = fresh;
                if let Some(c) = fresh {
                    self.heap.push(Reverse((c, s)));
                }
            }
        }
        // Entries for superseded values linger until they reach the top;
        // drop them here. Live entries always cover every `Some` in
        // `current`, so an empty heap is a true "no events anywhere".
        while let Some(&Reverse((c, s))) = self.heap.peek() {
            if self.current[s as usize] == Some(c) {
                return Some(c);
            }
            self.heap.pop();
        }
        // Rebuilding on bloat is unnecessary: the heap only grows by one
        // entry per *changed* source per query and stale entries are
        // popped above, so its size is bounded by live values plus
        // not-yet-surfaced stale ones.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference reducer: the linear scan the heap must match.
    fn scan(values: &[Option<Cycle>]) -> Option<Cycle> {
        values.iter().flatten().min().copied()
    }

    #[test]
    fn matches_linear_scan_under_random_mutation() {
        // A deterministic xorshift walk over (source, new value)
        // mutations; after each batch the heap and the scan must agree.
        let n = 13usize;
        let mut values: Vec<Option<Cycle>> = vec![None; n];
        let mut heap = NextEventHeap::new(n);
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2_000 {
            for _ in 0..(rng() % 4) {
                let s = (rng() % n as u64) as usize;
                values[s] = match rng() % 3 {
                    0 => None,
                    _ => Some(rng() % 1_000),
                };
                heap.mark_dirty(s);
            }
            assert_eq!(heap.earliest(|s| values[s as usize]), scan(&values));
        }
    }

    #[test]
    fn unmarked_sources_are_not_repolled() {
        let mut heap = NextEventHeap::new(3);
        let mut polls = vec![0u32; 3];
        let values = [Some(5), Some(2), None];
        let e = heap.earliest(|s| {
            polls[s as usize] += 1;
            values[s as usize]
        });
        assert_eq!(e, Some(2));
        assert_eq!(polls, vec![1, 1, 1], "first query polls everything");
        let e = heap.earliest(|s| {
            polls[s as usize] += 1;
            values[s as usize]
        });
        assert_eq!(e, Some(2));
        assert_eq!(polls, vec![1, 1, 1], "clean sources answer from cache");
        heap.mark_dirty(1);
        heap.mark_dirty(1); // duplicate marks collapse
        let e = heap.earliest(|s| {
            polls[s as usize] += 1;
            if s == 1 {
                None
            } else {
                values[s as usize]
            }
        });
        assert_eq!(e, Some(5), "source 1 went quiet; min moves to source 0");
        assert_eq!(polls, vec![1, 2, 1], "only the dirty source re-polled");
    }

    #[test]
    fn empty_heap_means_no_events() {
        let mut heap = NextEventHeap::new(2);
        assert_eq!(heap.earliest(|_| None), None);
        heap.mark_dirty(0);
        assert_eq!(heap.earliest(|s| if s == 0 { Some(9) } else { None }), Some(9));
        heap.mark_dirty(0);
        assert_eq!(heap.earliest(|_| None), None);
    }

    #[test]
    fn mode_default_is_push() {
        assert_eq!(NextEventMode::default(), NextEventMode::Push);
    }

    #[test]
    fn wake_queue_pops_stale_and_keeps_future() {
        let mut q = WakeQueue::new();
        q.push(5);
        q.push(12);
        q.push(9);
        assert_eq!(q.earliest_after(0), Some(5));
        // The cycle-5 event fires and is consumed; at now=5 its entry is
        // stale and must be skipped, not returned.
        assert_eq!(q.earliest_after(5), Some(9));
        assert_eq!(q.earliest_after(11), Some(12));
        assert_eq!(q.earliest_after(12), None);
        assert_eq!(q.earliest_after(100), None, "drained queue stays empty");
    }

    #[test]
    fn wake_queue_duplicates_are_harmless() {
        let mut q = WakeQueue::new();
        for _ in 0..10 {
            q.push(7);
        }
        q.push(3);
        assert_eq!(q.earliest_after(2), Some(3));
        assert_eq!(q.earliest_after(3), Some(7));
        assert_eq!(q.earliest_after(7), None);
    }

    #[test]
    fn wake_queue_entry_at_now_plus_one_is_live() {
        // An event scheduled for the very next cycle must be reported:
        // the tick loops jump only when `next > now + 1`, but the value
        // itself still participates in the min.
        let mut q = WakeQueue::new();
        q.push(43);
        assert_eq!(q.earliest_after(42), Some(43));
    }

    #[test]
    fn wake_queue_compaction_preserves_order() {
        let mut q = WakeQueue::new();
        // Flood with duplicates well past the compaction threshold, then
        // confirm the queue still reports the exact minimum.
        for i in 0..6_000u64 {
            q.push(1_000_000 + (i % 17));
        }
        q.push(999_999);
        assert_eq!(q.earliest_after(500_000), Some(999_999));
        assert_eq!(q.earliest_after(999_999), Some(1_000_000));
        assert_eq!(q.earliest_after(1_000_016), None);
    }
}
