//! Regenerate Figure 11: operand-log performance across log sizes.
//!
//! Runs under sweep supervision (`--deadline`, `--resume`, `--journal`);
//! exits 2 if any point was quarantined.

use gex_bench::{sms_from_env, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.apply_max_cycles();
    args.apply_page_size();
    let preset = args.preset();
    let sms = sms_from_env();
    let fig = gex::experiments::fig11_supervised(preset, sms, &args.sweep_options("fig11"));
    println!("{fig}");
    if !fig.quarantine.is_empty() {
        std::process::exit(2);
    }
}
