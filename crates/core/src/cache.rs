//! Cross-sweep simulation result cache.
//!
//! Figure campaigns share simulation points: every operand-log point in
//! fig11 normalizes against the same stall-on-fault baseline fig10
//! already simulated, `normalized_performance` re-runs the baseline per
//! call, and a scalability sweep replays whole grids per SM count. The
//! simulator is deterministic — a `(workload, scheme, GPU config, paging,
//! residency, injection plan)` tuple always produces the same
//! [`GpuRunReport`] — so this module memoizes completed runs
//! process-wide and hands out shared [`Arc`]s instead of re-simulating.
//!
//! Design points:
//!
//! * **Keyed by simulation identity only.** The key digests everything
//!   that determines the report and nothing that doesn't: run budgets
//!   (wall clocks, deadlines, cancel tokens) are supervision policy, not
//!   physics, so a point simulated under one budget answers every later
//!   budget. Under [`PagingMode::AllResident`] the engine pre-maps every
//!   touched page and ignores the residency argument, so the key omits
//!   it there — the drivers' shared empty residency and the facade's
//!   per-workload residency hit the same entry.
//! * **Only successful runs are cached.** Errors depend on the budget
//!   (deadlines) or wall clock and must re-run.
//! * **Concurrent-builder coalescing.** The cache is shared through the
//!   `gex-exec` pool; when two workers want the same uncached point, one
//!   simulates and the other waits on the entry instead of duplicating
//!   the work. A failed build wakes waiters to try themselves.
//! * **Observable.** Global [`stats`] counters (hits, misses, stores,
//!   coalesced waits) let sweeps report how much simulation the cache
//!   saved; the supervised figure drivers surface the per-campaign delta.
//! * **A/B switchable.** `GEX_SIM_CACHE=0` (or [`set_enabled`]`(false)`)
//!   bypasses the cache entirely for equivalence testing; results must
//!   be byte-identical either way.
//! * **Bounded.** At most [`DEFAULT_CAP`] finished reports process-wide
//!   (sliced evenly across the shards), least-recently-used entries
//!   evicted first; `GEX_SIM_CACHE_CAP` / [`set_cap`] tune it (0 =
//!   unbounded). The default is far above a full figure campaign, so
//!   exactly-once behaviour is unchanged there; it exists to bound long
//!   multi-grid sweeps. Evictions show up in [`stats`].

use crate::journal::digest;
use crate::poison;
use gex_sim::{Gpu, GpuRunReport, PagingMode, Residency, SimError};
use gex_workloads::Workload;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// One entry's lifecycle inside a shard.
enum Slot {
    /// A worker is simulating this point right now.
    Building,
    /// The finished report, stamped with its last-used tick (the LRU
    /// eviction order).
    Ready(Arc<GpuRunReport>, u64),
}

/// One lock-sharded slice of the cache. Waiters for in-flight builds
/// park on the shard's condvar (builds are long; shard-granular wakeups
/// are plenty).
#[derive(Default)]
struct Shard {
    map: Mutex<HashMap<String, Slot>>,
    ready: Condvar,
}

const SHARDS: usize = 16;

struct Cache {
    shards: Vec<Shard>,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
    /// Monotonic last-used clock for LRU stamps.
    tick: AtomicU64,
}

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Cache {
        shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
        stores: AtomicU64::new(0),
        coalesced: AtomicU64::new(0),
        evictions: AtomicU64::new(0),
        tick: AtomicU64::new(0),
    })
}

/// 0 = unset (consult `GEX_SIM_CACHE`), 1 = forced on, 2 = forced off.
static ENABLED_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force the cache on or off for this process, overriding
/// `GEX_SIM_CACHE`. The A/B switch for equivalence tests.
pub fn set_enabled(on: bool) {
    ENABLED_OVERRIDE.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// True if [`run_cached`] consults the cache: on by default, disabled by
/// `GEX_SIM_CACHE=0` in the environment or [`set_enabled`]`(false)`.
pub fn enabled() -> bool {
    match ENABLED_OVERRIDE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => std::env::var("GEX_SIM_CACHE").map_or(true, |v| v != "0"),
    }
}

/// Default total capacity in finished reports. A full fig10+fig11 grid is
/// a few hundred points, so campaigns still hit exactly-once well below
/// this; it exists to bound very long scalability sweeps.
pub const DEFAULT_CAP: usize = 8192;

/// `u64::MAX` = unset (consult `GEX_SIM_CACHE_CAP`), otherwise the total
/// entry cap (0 = unbounded).
static CAP_OVERRIDE: AtomicU64 = AtomicU64::new(u64::MAX);

/// Set the total cache capacity in finished reports for this process,
/// overriding `GEX_SIM_CACHE_CAP`. `0` means unbounded.
pub fn set_cap(cap: usize) {
    CAP_OVERRIDE.store(cap as u64, Ordering::Relaxed);
}

/// Total entry cap: [`set_cap`] override, else `GEX_SIM_CACHE_CAP`, else
/// [`DEFAULT_CAP`]. `0` means unbounded.
pub fn cap() -> usize {
    match CAP_OVERRIDE.load(Ordering::Relaxed) {
        u64::MAX => std::env::var("GEX_SIM_CACHE_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAP),
        v => v as usize,
    }
}

/// Per-shard slice of `total` entries; `None` when unbounded.
fn per_shard_cap(total: usize) -> Option<usize> {
    (total > 0).then(|| total.div_ceil(SHARDS).max(1))
}

/// Evict least-recently-used `Ready` entries until fewer than `cap`
/// remain (making room for one insert). `Building` placeholders are never
/// evicted — a waiter parked on one would retry a simulation that is
/// already running. Returns the number of entries evicted.
fn evict_to_cap(map: &mut HashMap<String, Slot>, cap: usize) -> u64 {
    let mut evicted = 0;
    loop {
        let ready = map.values().filter(|s| matches!(s, Slot::Ready(..))).count();
        if ready < cap {
            break;
        }
        let victim = map
            .iter()
            .filter_map(|(k, s)| match s {
                Slot::Ready(_, stamp) => Some((*stamp, k.clone())),
                Slot::Building => None,
            })
            .min();
        let Some((_, key)) = victim else { break };
        map.remove(&key);
        evicted += 1;
    }
    evicted
}

/// Monotonic process-wide cache counters; snapshot via [`stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a finished entry.
    pub hits: u64,
    /// Lookups that had to simulate.
    pub misses: u64,
    /// Reports inserted (misses that simulated successfully).
    pub stores: u64,
    /// Hits that waited for a concurrent builder instead of finding the
    /// entry already finished (a subset of `hits`).
    pub coalesced: u64,
    /// Least-recently-used entries dropped to stay under the capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Counter increase from `earlier` to `self` — the per-campaign view
    /// the supervised drivers report.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            stores: self.stores - earlier.stores,
            coalesced: self.coalesced - earlier.coalesced,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} hit(s) ({} coalesced), {} miss(es), {} stored, {} evicted",
            self.hits, self.coalesced, self.misses, self.stores, self.evictions
        )
    }
}

/// Snapshot the process-wide cache counters.
pub fn stats() -> CacheStats {
    let c = cache();
    CacheStats {
        hits: c.hits.load(Ordering::Relaxed),
        misses: c.misses.load(Ordering::Relaxed),
        stores: c.stores.load(Ordering::Relaxed),
        coalesced: c.coalesced.load(Ordering::Relaxed),
        evictions: c.evictions.load(Ordering::Relaxed),
    }
}

/// Number of finished reports currently held.
pub fn len() -> usize {
    cache().shards.iter().map(|s| poison::lock(&s.map).len()).sum()
}

/// Drop every cached report (counters keep running). Long multi-preset
/// campaigns can call this between phases to bound memory.
pub fn clear() {
    for s in &cache().shards {
        poison::lock(&s.map).clear();
    }
}

/// The simulation-identity key: everything that determines the report,
/// nothing that doesn't. The workload is pinned by name + functional
/// image digest + launch geometry (construction is deterministic, so
/// these pin the exact trace); budgets are deliberately absent.
fn key_of(gpu: &Gpu, w: &Workload, residency: &Residency) -> String {
    use std::fmt::Write;
    let t = &w.trace;
    let mut k = String::with_capacity(192);
    let _ = write!(
        k,
        "w={}|img={:016x}|di={}|b={}|tpb={}|r={}|sh={}|s={:?}|cfg={:?}|p={:?}",
        w.name,
        w.image_digest,
        t.dyn_instrs(),
        t.blocks.len(),
        t.threads_per_block,
        t.regs_per_thread,
        t.shared_bytes,
        gpu.scheme(),
        gpu.config(),
        gpu.paging(),
    );
    // AllResident pre-maps every touched page and never reads the
    // residency; keying it would split identical simulations.
    if !matches!(gpu.paging(), PagingMode::AllResident) {
        let _ = write!(k, "|res={residency:?}");
    }
    if let Some(plan) = gpu.injection() {
        let _ = write!(k, "|inj={plan:?}");
    }
    k
}

/// Removes a `Building` placeholder if the builder unwinds or errors, so
/// waiters retry instead of deadlocking on a corpse.
struct BuildGuard<'a> {
    shard: &'a Shard,
    key: String,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            // This drop runs while unwinding from a panicking build;
            // recovering from a poisoned lock (rather than double
            // panicking and aborting) is what lets the supervisor
            // quarantine the point and keep the shard usable.
            poison::lock(&self.shard.map).remove(&self.key);
            self.shard.ready.notify_all();
        }
    }
}

/// Run `gpu` on `w`'s trace with `residency`, answering from the cache
/// when an identical point has already simulated. On a miss the caller's
/// thread simulates (under its own budget) and publishes the report for
/// everyone else. Errors are returned, never cached.
pub fn run_cached(
    gpu: &Gpu,
    w: &Workload,
    residency: &Residency,
) -> Result<Arc<GpuRunReport>, SimError> {
    if !enabled() {
        return gpu.try_run(&w.trace, residency).map(Arc::new);
    }
    let c = cache();
    let key = key_of(gpu, w, residency);
    let shard = &c.shards[(digest(&key) as usize) % SHARDS];
    {
        // Poison-recovering locks throughout: a worker that panics near
        // the cache must not wedge the shard for every other tenant (the
        // map is consistent at every lock release; `BuildGuard` clears
        // half-built entries).
        let mut map = poison::lock(&shard.map);
        let mut waited = false;
        loop {
            match map.get_mut(&key) {
                Some(Slot::Ready(r, stamp)) => {
                    *stamp = c.tick.fetch_add(1, Ordering::Relaxed);
                    c.hits.fetch_add(1, Ordering::Relaxed);
                    if waited {
                        c.coalesced.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(Arc::clone(r));
                }
                Some(Slot::Building) => {
                    // Park until the builder publishes or gives up; if
                    // the build fails we fall through to the `None` arm
                    // and simulate ourselves.
                    waited = true;
                    map = poison::wait(&shard.ready, map);
                }
                None => {
                    map.insert(key.clone(), Slot::Building);
                    break;
                }
            }
        }
    }
    c.misses.fetch_add(1, Ordering::Relaxed);
    let mut guard = BuildGuard { shard, key: key.clone(), armed: true };
    let report = gpu.try_run(&w.trace, residency)?;
    let report = Arc::new(report);
    guard.armed = false;
    {
        let mut map = poison::lock(&shard.map);
        if let Some(cap) = per_shard_cap(cap()) {
            let evicted = evict_to_cap(&mut map, cap);
            if evicted > 0 {
                c.evictions.fetch_add(evicted, Ordering::Relaxed);
            }
        }
        let stamp = c.tick.fetch_add(1, Ordering::Relaxed);
        map.insert(key, Slot::Ready(Arc::clone(&report), stamp));
    }
    shard.ready.notify_all();
    c.stores.fetch_add(1, Ordering::Relaxed);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gex_sim::GpuConfig;
    use gex_sm::Scheme;
    use gex_workloads::{suite, Preset};

    // Unit tests share the process-global cache with each other, so they
    // assert via counter deltas and distinct keys only; the end-to-end
    // behaviour (hit identity, figure equivalence, fig11 baseline
    // sharing) lives in `tests/cache_equivalence.rs`, its own process.

    #[test]
    fn identical_points_share_one_simulation() {
        let w = suite::by_name("histo", Preset::Test).unwrap();
        let gpu =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::WdCommit, PagingMode::AllResident);
        let res = Residency::new();
        let before = stats();
        let a = run_cached(&gpu, &w, &res).unwrap();
        let b = run_cached(&gpu, &w, &res).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "a hit must share the stored report");
        let d = stats().since(&before);
        assert_eq!((d.hits, d.misses, d.stores), (1, 1, 1));
    }

    #[test]
    fn all_resident_key_ignores_the_residency_argument() {
        let w = suite::by_name("sad", Preset::Test).unwrap();
        let gpu =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::Baseline, PagingMode::AllResident);
        assert_eq!(key_of(&gpu, &w, &Residency::new()), key_of(&gpu, &w, &w.demand_residency()));
    }

    #[test]
    fn key_separates_scheme_config_and_injection() {
        let w = suite::by_name("sad", Preset::Test).unwrap();
        let res = Residency::new();
        let base =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::Baseline, PagingMode::AllResident);
        let other_scheme =
            Gpu::new(GpuConfig::kepler_k20().with_sms(2), Scheme::WdCommit, PagingMode::AllResident);
        let other_sms =
            Gpu::new(GpuConfig::kepler_k20().with_sms(4), Scheme::Baseline, PagingMode::AllResident);
        let injected = base.clone().inject(gex_sim::InjectionPlan::light(7));
        let k = key_of(&base, &w, &res);
        assert_ne!(k, key_of(&other_scheme, &w, &res));
        assert_ne!(k, key_of(&other_sms, &w, &res));
        assert_ne!(k, key_of(&injected, &w, &res));
    }

    #[test]
    fn stats_since_subtracts_fieldwise() {
        let a = CacheStats { hits: 5, misses: 3, stores: 2, coalesced: 1, evictions: 0 };
        let b = CacheStats { hits: 7, misses: 4, stores: 3, coalesced: 1, evictions: 2 };
        assert_eq!(
            b.since(&a),
            CacheStats { hits: 2, misses: 1, stores: 1, coalesced: 0, evictions: 2 }
        );
        assert!(b.to_string().contains("7 hit(s)"));
        assert!(b.to_string().contains("2 evicted"));
    }

    #[test]
    fn shard_cap_slices_the_total() {
        assert_eq!(per_shard_cap(0), None, "0 means unbounded");
        assert_eq!(per_shard_cap(1), Some(1));
        assert_eq!(per_shard_cap(8), Some(1));
        assert_eq!(per_shard_cap(DEFAULT_CAP), Some(DEFAULT_CAP / SHARDS));
    }

    // Eviction is tested on a hand-built map: the process-global cache is
    // shared with every other test in this binary, so temporarily
    // shrinking its cap here could evict their entries mid-assertion.
    #[test]
    fn evicts_least_recently_used_ready_entries_only() {
        let dummy = || {
            let w = suite::by_name("histo", Preset::Test).unwrap();
            let gpu = Gpu::new(
                GpuConfig::kepler_k20().with_sms(1),
                Scheme::Baseline,
                PagingMode::AllResident,
            );
            Arc::new(gpu.try_run(&w.trace, &Residency::new()).unwrap())
        };
        let report = dummy();
        let mut map = HashMap::new();
        map.insert("old".to_string(), Slot::Ready(Arc::clone(&report), 1));
        map.insert("new".to_string(), Slot::Ready(Arc::clone(&report), 9));
        map.insert("building".to_string(), Slot::Building);
        // Cap of 1: room for one more Ready entry means both existing
        // Ready entries go, oldest stamp first — but never the builder.
        assert_eq!(evict_to_cap(&mut map, 2), 1);
        assert!(!map.contains_key("old"), "stamp 1 is the LRU victim");
        assert!(map.contains_key("new"));
        assert!(map.contains_key("building"));
        assert_eq!(evict_to_cap(&mut map, 1), 1);
        assert!(!map.contains_key("new"));
        assert!(map.contains_key("building"), "builders are never evicted");
        // Only a builder left: nothing evictable, must not loop forever.
        assert_eq!(evict_to_cap(&mut map, 1), 0);
    }
}
