//! Print Table 2 (operand log area/power overheads).

fn main() {
    println!("{}", gex::experiments::table2());
}
