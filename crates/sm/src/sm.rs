//! The SM pipeline: fetch, dual issue, scoreboarding, backend units,
//! out-of-order commit — and the five exception designs of the paper.
//!
//! The pipeline is trace-driven: each warp replays the linear dynamic
//! instruction stream produced by the functional simulator. The stages map
//! to the paper's Figure 1/3 timeline:
//!
//! * **Fetch** — one warp per cycle refills its instruction buffer; fetch
//!   is disabled across control flow (baseline behaviour) and, under the
//!   warp-disable schemes, across global-memory instructions.
//! * **Issue** — up to two instructions per cycle from one or two warps, in
//!   program order per warp, gated by the scoreboard, unit occupancy and
//!   the active scheme (replay-queue source holds, operand-log capacity).
//! * **Operand read** — one cycle after issue; source scoreboards release
//!   here except for global-memory instructions under the replay queue,
//!   which hold until the last TLB check.
//! * **Execute/commit** — fixed-latency units complete internally;
//!   global-memory instructions complete when the memory system delivers
//!   `Data`, commit out of order, and may instead *fault*: the instruction
//!   is squashed, recorded for replay, and the warp parks until the fill
//!   unit broadcasts the region resolution.

use crate::config::{SchedulerPolicy, SmConfig};
use crate::error::{SmError, SmStage};
use crate::exec::ExecUnits;
use crate::operand_log::OperandLog;
use crate::scheme::Scheme;
use crate::scoreboard::Scoreboard;
use crate::stats::SmStats;
use gex_isa::op::{Opcode, Space, Unit};
use gex_isa::reg::RegId;
use gex_isa::trace::{BlockTrace, DynInstr, DynKind};
use gex_mem::system::{AccessEvent, AccessKind, AccessToken, MemSystem};
use gex_mem::{region_of, Cycle};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::sync::Arc;

/// Scheduling state of one warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpState {
    /// Fetching and issuing normally.
    Active,
    /// Arrived at a block barrier; waiting for siblings.
    AtBarrier,
    /// Squashed by a page fault; waiting for its regions to resolve.
    Faulted,
    /// Squashed by an arithmetic exception; running the trap handler.
    Trapped,
    /// All instructions committed.
    Done,
}

/// Why fetch is disabled for a warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FetchBlock {
    None,
    /// Baseline: a fetched control-flow instruction blocks until commit.
    Branch(usize),
    /// Warp-disable schemes: a fetched global-memory instruction blocks
    /// until commit (WD-commit) or last TLB check (WD-lastcheck).
    Wd(usize),
}

#[derive(Debug, Clone)]
struct Inflight {
    idx: usize,
    dst: Option<RegId>,
    srcs: [Option<RegId>; 4],
    token: Option<AccessToken>,
    srcs_released: bool,
    log_slots: u32,
}

#[derive(Debug)]
struct Warp {
    state: WarpState,
    next_issue: usize,
    next_fetch: usize,
    ibuffer: VecDeque<usize>,
    inflight: Vec<Inflight>,
    /// Squashed global-memory instructions pending replay, program order.
    replay: VecDeque<usize>,
    waiting_regions: Vec<u64>,
    /// Trace indices whose arithmetic exception was already handled (their
    /// replay must commit, not re-trap).
    trap_handled: Vec<usize>,
    sb: Scoreboard,
    fetch_block: FetchBlock,
}

/// Adjust the SM's Running-block active-warp count for one warp's state
/// change. Every warp-state write on a resident block funnels through
/// this (or adjusts the counter explicitly) so the count never drifts
/// from the slow scan it replaces.
fn count_transition(
    active_warps: &mut u32,
    block_state: BlockState,
    from: WarpState,
    to: WarpState,
) {
    if block_state != BlockState::Running || from == to {
        return;
    }
    if from == WarpState::Active {
        *active_warps -= 1;
    } else if to == WarpState::Active {
        *active_warps += 1;
    }
}

impl Warp {
    fn fresh(next_issue: usize, replay: VecDeque<usize>, state: WarpState) -> Self {
        Warp {
            state,
            next_issue,
            next_fetch: next_issue,
            ibuffer: VecDeque::new(),
            inflight: Vec::new(),
            replay,
            waiting_regions: Vec::new(),
            trap_handled: Vec::new(),
            sb: Scoreboard::new(),
            fetch_block: FetchBlock::None,
        }
    }
}

/// Run state of a resident block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockState {
    /// Executing normally.
    Running,
    /// Preparing for a context switch: no fetch/issue, in-flight work
    /// drains.
    Draining,
}

#[derive(Debug)]
struct BlockSlot {
    block_id: u32,
    trace: Arc<BlockTrace>,
    warps: Vec<Warp>,
    barrier_arrived: u32,
    state: BlockState,
}

/// Kernel-wide parameters an SM needs before blocks arrive.
#[derive(Debug, Clone, Copy)]
pub struct KernelSetup {
    /// Warps per block.
    pub warps_per_block: u32,
    /// Registers per thread (context sizing).
    pub regs_per_thread: u32,
    /// Shared memory per block in bytes (context sizing).
    pub shared_bytes: u32,
    /// Concurrent blocks per SM (occupancy; also the operand-log partition
    /// count).
    pub occupancy_blocks: u32,
}

/// A preempted block's architectural state, held off-chip (use case 1).
#[derive(Debug, Clone)]
pub struct SavedBlock {
    block_id: u32,
    trace: Arc<BlockTrace>,
    warps: Vec<SavedWarp>,
    barrier_arrived: u32,
    context_bytes: u64,
}

#[derive(Debug, Clone)]
struct SavedWarp {
    state: WarpState,
    next_issue: usize,
    replay: VecDeque<usize>,
    waiting_regions: Vec<u64>,
    trap_handled: Vec<usize>,
}

impl SavedBlock {
    /// The block this state belongs to.
    pub fn block_id(&self) -> u32 {
        self.block_id
    }

    /// Context size in bytes (registers + shared + control + replay/log
    /// state) — determines the save/restore transfer time.
    pub fn context_bytes(&self) -> u64 {
        self.context_bytes
    }

    /// Note that a fault region was resolved while the block was off-chip.
    pub fn resolve_region(&mut self, region: u64) {
        for w in &mut self.warps {
            w.waiting_regions.retain(|&r| r != region);
            if w.state == WarpState::Faulted && w.waiting_regions.is_empty() {
                w.state = WarpState::Active;
            }
        }
    }

    /// True if any warp still waits on an unresolved fault.
    pub fn has_pending_fault(&self) -> bool {
        self.warps.iter().any(|w| w.state == WarpState::Faulted)
    }
}

/// Scheduling snapshot of one resident warp — the watchdog's raw material
/// for explaining *why* a run stopped making progress.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WarpDiag {
    /// SM id.
    pub sm: u32,
    /// Block id (global, not the slot index).
    pub block_id: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Scheduling state.
    pub state: WarpState,
    /// 64 KB regions the warp waits on (faulted warps).
    pub waiting_regions: Vec<u64>,
    /// Squashed instructions pending replay.
    pub replay_len: usize,
    /// Next instruction to issue.
    pub next_issue: usize,
    /// Length of the warp's dynamic trace.
    pub trace_len: usize,
}

/// A fault notification surfaced to the GPU-level scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultNotice {
    /// Block slot that faulted.
    pub slot: u32,
    /// Warp index within the block.
    pub warp: u32,
    /// Position in the global pending-fault queue (Section 4.1's
    /// context-switch signal).
    pub queue_pos: u32,
    /// 64 KB regions the warp now waits on.
    pub regions: Vec<u64>,
}

/// Pipeline stage transition recorded by the probe (for reproducing the
/// paper's Figure 3/4/6/7 timing diagrams and for tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeStage {
    /// Instruction left the issue stage.
    Issue,
    /// Last TLB check passed (global memory only).
    LastCheck,
    /// Instruction committed.
    Commit,
    /// Instruction was squashed by a fault.
    Fault,
}

/// One probe record: instruction `idx` of `warp` in block `slot` reached
/// `stage` at `cycle`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeEvent {
    /// Block slot.
    pub slot: u32,
    /// Warp within the block.
    pub warp: u32,
    /// Trace index of the instruction.
    pub idx: usize,
    /// Stage reached.
    pub stage: ProbeStage,
    /// Cycle of the transition.
    pub cycle: Cycle,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SmEv {
    /// Fixed-latency instruction completes (commit).
    Complete { slot: u32, warp: u32, idx: usize },
    /// Operand-read stage releases source scoreboards.
    SrcRelease { slot: u32, warp: u32, idx: usize },
    /// The arithmetic-exception handler finishes; the warp resumes and
    /// replays the trapped instruction.
    TrapDone { slot: u32, warp: u32 },
}

/// One streaming multiprocessor. See the [module docs](self).
#[derive(Debug)]
pub struct Sm {
    /// This SM's index (its L1/L1-TLB identity in the memory system).
    pub sm_id: u32,
    cfg: SmConfig,
    scheme: Scheme,
    setup: Option<KernelSetup>,
    slots: Vec<Option<BlockSlot>>,
    log: Option<OperandLog>,
    exec: ExecUnits,
    events: BinaryHeap<Reverse<(Cycle, u64, SmEv)>>,
    seq: u64,
    tokens: HashMap<AccessToken, (u32, u32, usize)>,
    completed: Vec<u32>,
    notices: Vec<FaultNotice>,
    fetch_rr: usize,
    issue_rr: usize,
    /// Last warp that issued (greedy-then-oldest state).
    greedy_warp: Option<(u32, u32)>,
    stats: SmStats,
    probe_on: bool,
    probe: Vec<ProbeEvent>,
    /// Reused per-cycle scheduling scratch (allocation-free ticks).
    order_buf: Vec<(u32, u32)>,
    /// Warps in [`WarpState::Active`] within [`BlockState::Running`]
    /// blocks, maintained incrementally at every state transition so
    /// [`Sm::is_stalled`] is O(1) instead of a per-cycle all-slot scan.
    active_warps: u32,
    /// Committed instructions per (block id, warp index) — survives block
    /// completion and context switches, so differential runs can compare
    /// exactly what every warp retired.
    retired: HashMap<(u32, u32), u64>,
    /// First fatal pipeline error (the run must abort).
    error: Option<SmError>,
}

impl Sm {
    /// A new SM with the given id, configuration and exception scheme.
    pub fn new(sm_id: u32, cfg: SmConfig, scheme: Scheme) -> Self {
        let exec = ExecUnits::new(cfg.math_units, cfg.sfu_units, cfg.ldst_units, cfg.branch_units);
        Sm {
            sm_id,
            cfg,
            scheme,
            setup: None,
            slots: Vec::new(),
            log: None,
            exec,
            events: BinaryHeap::new(),
            seq: 0,
            tokens: HashMap::new(),
            completed: Vec::new(),
            notices: Vec::new(),
            fetch_rr: 0,
            issue_rr: 0,
            greedy_warp: None,
            stats: SmStats::default(),
            probe_on: false,
            probe: Vec::new(),
            order_buf: Vec::new(),
            active_warps: 0,
            retired: HashMap::new(),
            error: None,
        }
    }

    /// Record per-instruction stage transitions (issue, last TLB check,
    /// commit, fault) for timing-diagram reproduction. Off by default.
    pub fn enable_probe(&mut self) {
        self.probe_on = true;
    }

    /// Drain the recorded probe events.
    pub fn take_probe(&mut self) -> Vec<ProbeEvent> {
        std::mem::take(&mut self.probe)
    }

    fn record(&mut self, slot: u32, warp: u32, idx: usize, stage: ProbeStage, cycle: Cycle) {
        if self.probe_on {
            self.probe.push(ProbeEvent { slot, warp, idx, stage, cycle });
        }
    }

    /// The active scheme.
    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Statistics so far.
    pub fn stats(&self) -> SmStats {
        self.stats
    }

    /// Committed instruction counts per (block id, warp index).
    pub fn warp_retired(&self) -> &HashMap<(u32, u32), u64> {
        &self.retired
    }

    /// Take the first fatal pipeline error, if one was recorded. Once set,
    /// the affected warp makes no further progress; the caller must abort.
    pub fn take_error(&mut self) -> Option<SmError> {
        self.error.take()
    }

    /// Snapshot of every resident warp's scheduling state, for the forward
    /// progress watchdog's diagnostics.
    ///
    /// This clones per-warp state, so it must only be called when an error
    /// is actually being constructed (the watchdog/abort path), never per
    /// cycle. [`Sm::append_warp_diagnostics`] lets multi-SM callers reuse
    /// one output vector.
    pub fn warp_diagnostics(&self) -> Vec<WarpDiag> {
        let mut out =
            Vec::with_capacity(self.slots.iter().flatten().map(|b| b.warps.len()).sum());
        self.append_warp_diagnostics(&mut out);
        out
    }

    /// Append this SM's warp diagnostics to `out` (no intermediate vector
    /// per SM when the engine snapshots the whole GPU).
    pub fn append_warp_diagnostics(&self, out: &mut Vec<WarpDiag>) {
        for b in self.slots.iter().flatten() {
            for (wi, w) in b.warps.iter().enumerate() {
                out.push(WarpDiag {
                    sm: self.sm_id,
                    block_id: b.block_id,
                    warp: wi as u32,
                    state: w.state,
                    waiting_regions: w.waiting_regions.clone(),
                    replay_len: w.replay.len(),
                    next_issue: w.next_issue,
                    trace_len: b.trace.warps[wi].instrs.len(),
                });
            }
        }
    }

    fn fail(&mut self, err: SmError) {
        if self.error.is_none() {
            self.error = Some(err);
        }
    }

    /// Configure for a kernel: sizes the block slots and, for the
    /// operand-log scheme, partitions the log across the occupancy.
    pub fn configure_kernel(&mut self, setup: KernelSetup) {
        assert!(setup.occupancy_blocks > 0, "kernel does not fit on the SM");
        self.slots = (0..setup.occupancy_blocks).map(|_| None).collect();
        self.log = self.scheme.log_slots().map(|s| OperandLog::new(s, setup.occupancy_blocks));
        self.setup = Some(setup);
    }

    /// Index of a free block slot, if any.
    pub fn free_slot(&self) -> Option<u32> {
        self.slots.iter().position(|s| s.is_none()).map(|i| i as u32)
    }

    /// Number of resident blocks.
    pub fn resident_blocks(&self) -> u32 {
        self.slots.iter().filter(|s| s.is_some()).count() as u32
    }

    /// Place a fresh block into a free slot. Returns the slot index.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free or the kernel was not configured.
    pub fn assign_block(&mut self, trace: Arc<BlockTrace>) -> u32 {
        let slot = self.free_slot().expect("no free block slot");
        let warps: Vec<Warp> =
            trace.warps.iter().map(|_| Warp::fresh(0, VecDeque::new(), WarpState::Active)).collect();
        self.active_warps += warps.len() as u32;
        self.slots[slot as usize] = Some(BlockSlot {
            block_id: trace.block_id,
            trace,
            warps,
            barrier_arrived: 0,
            state: BlockState::Running,
        });
        slot
    }

    /// Block ids that finished since the last call.
    pub fn take_completed(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.completed)
    }

    /// Fault notifications since the last call (drives the local scheduler
    /// of use case 1 and the GPU-local handler of use case 2).
    pub fn take_fault_notices(&mut self) -> Vec<FaultNotice> {
        std::mem::take(&mut self.notices)
    }

    /// True if no blocks are resident.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(|s| s.is_none())
    }

    /// True if the SM cannot make progress without an external event:
    /// every resident warp is faulted, at a barrier that cannot release,
    /// done, or draining, and no internal completions are pending.
    ///
    /// O(1): the active-warp count is maintained incrementally at every
    /// state transition instead of scanning all slots each cycle.
    pub fn is_stalled(&self) -> bool {
        debug_assert_eq!(
            self.active_warps,
            self.count_active_slow(),
            "incremental active-warp count drifted from the slot scan"
        );
        self.events.is_empty() && self.active_warps == 0
    }

    /// The slow all-slot scan the incremental count replaces; cross-checked
    /// against it by a `debug_assert` in [`Sm::is_stalled`].
    fn count_active_slow(&self) -> u32 {
        self.slots
            .iter()
            .flatten()
            .filter(|b| b.state == BlockState::Running)
            .flat_map(|b| &b.warps)
            .filter(|w| w.state == WarpState::Active)
            .count() as u32
    }

    /// Earliest pending internal completion, for idle skip-ahead.
    pub fn next_event_cycle(&self) -> Option<Cycle> {
        self.events.peek().map(|Reverse((c, _, _))| *c)
    }

    // ------------------------------------------------- context switching

    /// Begin draining `slot` for a context switch: fetch and issue stop,
    /// in-flight instructions complete.
    pub fn begin_drain(&mut self, slot: u32) {
        if let Some(b) = self.slots[slot as usize].as_mut() {
            if b.state == BlockState::Running {
                self.active_warps -= b
                    .warps
                    .iter()
                    .filter(|w| w.state == WarpState::Active)
                    .count() as u32;
            }
            b.state = BlockState::Draining;
        }
    }

    /// True if `slot` has no in-flight instructions left.
    pub fn drained(&self, slot: u32) -> bool {
        self.slots[slot as usize]
            .as_ref()
            .is_some_and(|b| b.warps.iter().all(|w| w.inflight.is_empty()))
    }

    /// Extract the architectural state of a drained block, freeing the
    /// slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty or not drained.
    pub fn take_block(&mut self, slot: u32) -> SavedBlock {
        assert!(self.drained(slot), "taking a block with in-flight instructions");
        let b = self.slots[slot as usize].take().expect("empty slot");
        if b.state == BlockState::Running {
            self.active_warps -=
                b.warps.iter().filter(|w| w.state == WarpState::Active).count() as u32;
        }
        if let Some(log) = &mut self.log {
            log.reset_partition(slot);
        }
        let setup = self.setup.expect("kernel not configured");
        let threads = b.trace.warps.len() as u64 * 32;
        let mut context = threads * setup.regs_per_thread as u64 * 4
            + setup.shared_bytes as u64
            + b.trace.warps.len() as u64 * self.cfg.warp_control_bytes as u64;
        for w in &b.warps {
            context += w.replay.len() as u64 * self.cfg.replay_entry_bytes as u64;
        }
        if let Some(log) = &self.log {
            context += log.slots_per_partition() as u64 * crate::scheme::LOG_SLOT_BYTES as u64;
        }
        self.stats.blocks_switched_out += 1;
        SavedBlock {
            block_id: b.block_id,
            trace: b.trace,
            warps: b
                .warps
                .into_iter()
                .map(|w| SavedWarp {
                    state: w.state,
                    next_issue: w.next_issue,
                    replay: w.replay,
                    waiting_regions: w.waiting_regions,
                    trap_handled: w.trap_handled,
                })
                .collect(),
            barrier_arrived: b.barrier_arrived,
            context_bytes: context,
        }
    }

    /// Re-install a previously saved block into a free slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free.
    pub fn restore_block(&mut self, saved: SavedBlock) -> u32 {
        let slot = self.free_slot().expect("no free slot for restore");
        let warps: Vec<Warp> = saved
            .warps
            .into_iter()
            .map(|s| {
                let state = if s.state == WarpState::Trapped { WarpState::Active } else { s.state };
                let mut w = Warp::fresh(s.next_issue, s.replay, state);
                w.waiting_regions = s.waiting_regions;
                w.trap_handled = s.trap_handled;
                w
            })
            .collect();
        self.active_warps +=
            warps.iter().filter(|w| w.state == WarpState::Active).count() as u32;
        self.slots[slot as usize] = Some(BlockSlot {
            block_id: saved.block_id,
            trace: saved.trace,
            warps,
            barrier_arrived: saved.barrier_arrived,
            state: BlockState::Running,
        });
        self.stats.blocks_restored += 1;
        slot
    }

    /// Context size of a *resident* block, for switch-cost decisions.
    pub fn context_bytes(&self, slot: u32) -> u64 {
        let setup = self.setup.expect("kernel not configured");
        let b = self.slots[slot as usize].as_ref().expect("empty slot");
        let threads = b.trace.warps.len() as u64 * 32;
        let mut context = threads * setup.regs_per_thread as u64 * 4
            + setup.shared_bytes as u64
            + b.trace.warps.len() as u64 * self.cfg.warp_control_bytes as u64;
        for w in &b.warps {
            context += w.replay.len() as u64 * self.cfg.replay_entry_bytes as u64;
        }
        if let Some(log) = &self.log {
            context += log.slots_per_partition() as u64 * crate::scheme::LOG_SLOT_BYTES as u64;
        }
        context
    }

    /// True if any warp of `slot` waits on an unresolved fault.
    pub fn block_has_pending_fault(&self, slot: u32) -> bool {
        self.slots[slot as usize]
            .as_ref()
            .is_some_and(|b| b.warps.iter().any(|w| w.state == WarpState::Faulted))
    }

    /// Fill-unit broadcast: the 64 KB region containing `region` resolved.
    /// Faulted warps waiting only on it become runnable again and will
    /// replay their squashed instructions.
    pub fn on_region_resolved(&mut self, region: u64) {
        for b in self.slots.iter_mut().flatten() {
            for w in &mut b.warps {
                w.waiting_regions.retain(|&r| r != region);
                if w.state == WarpState::Faulted && w.waiting_regions.is_empty() {
                    count_transition(
                        &mut self.active_warps,
                        b.state,
                        w.state,
                        WarpState::Active,
                    );
                    w.state = WarpState::Active;
                }
            }
        }
    }

    // ------------------------------------------------------------- tick

    /// Advance the SM by one cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut MemSystem) {
        self.stats.cycles += 1;
        self.drain_internal(now);
        self.drain_memory(now, mem);
        self.issue(now, mem);
        self.fetch(now);
    }

    fn schedule(&mut self, cycle: Cycle, ev: SmEv) {
        self.seq += 1;
        self.events.push(Reverse((cycle, self.seq, ev)));
    }

    fn drain_internal(&mut self, now: Cycle) {
        while let Some(Reverse((c, _, _))) = self.events.peek() {
            if *c > now {
                break;
            }
            let Reverse((_, _, ev)) = self.events.pop().expect("peeked");
            match ev {
                SmEv::Complete { slot, warp, idx } => self.commit(now, slot, warp, idx),
                SmEv::SrcRelease { slot, warp, idx } => self.release_sources(slot, warp, idx),
                SmEv::TrapDone { slot, warp } => {
                    if let Some(b) = self.slots[slot as usize].as_mut() {
                        let w = &mut b.warps[warp as usize];
                        if w.state == WarpState::Trapped {
                            count_transition(
                                &mut self.active_warps,
                                b.state,
                                w.state,
                                WarpState::Active,
                            );
                            w.state = WarpState::Active;
                        }
                    }
                }
            }
        }
    }

    fn drain_memory(&mut self, now: Cycle, mem: &mut MemSystem) {
        for ev in mem.drain_events(self.sm_id) {
            match ev {
                AccessEvent::LastTlbCheck { token } => self.on_last_check(now, token),
                AccessEvent::Data { token } => {
                    if let Some((slot, warp, idx)) = self.tokens.remove(&token) {
                        self.commit(now, slot, warp, idx);
                    }
                }
                AccessEvent::Fault { token, pages, queue_pos } => {
                    self.on_fault(now, token, &pages, queue_pos);
                }
            }
        }
    }

    fn release_sources(&mut self, slot: u32, warp: u32, idx: usize) {
        let Some(b) = self.slots[slot as usize].as_mut() else { return };
        let w = &mut b.warps[warp as usize];
        if let Some(e) = w.inflight.iter_mut().find(|e| e.idx == idx) {
            if !e.srcs_released {
                e.srcs_released = true;
                w.sb.release_sources(e.srcs.iter().flatten().copied());
            }
        }
    }

    fn on_last_check(&mut self, now: Cycle, token: AccessToken) {
        let Some(&(slot, warp, idx)) = self.tokens.get(&token) else { return };
        self.record(slot, warp, idx, ProbeStage::LastCheck, now);
        // Replay queue: delayed source release happens here.
        self.release_sources(slot, warp, idx);
        let Some(b) = self.slots[slot as usize].as_mut() else { return };
        let w = &mut b.warps[warp as usize];
        // Operand log entries release once the instruction cannot fault.
        if let Some(e) = w.inflight.iter_mut().find(|e| e.idx == idx) {
            if e.log_slots > 0 {
                if let Some(log) = &mut self.log {
                    log.release(slot, e.log_slots);
                }
                e.log_slots = 0;
            }
        }
        // WD-lastcheck: fetch re-enables at the last TLB check.
        if self.scheme == Scheme::WdLastCheck && w.fetch_block == FetchBlock::Wd(idx) {
            w.fetch_block = FetchBlock::None;
        }
    }

    fn on_fault(&mut self, now: Cycle, token: AccessToken, pages: &[u64], queue_pos: u32) {
        let Some((slot, warp, idx)) = self.tokens.remove(&token) else { return };
        self.record(slot, warp, idx, ProbeStage::Fault, now);
        self.stats.faults += 1;
        self.stats.squashed += 1;
        let Some(b) = self.slots[slot as usize].as_mut() else { return };
        let w = &mut b.warps[warp as usize];
        // Squash: undo the instruction's scoreboard effects and remember it
        // for replay.
        let Some(pos) = w.inflight.iter().position(|e| e.idx == idx) else {
            let sm = self.sm_id;
            self.fail(SmError::InflightMissing {
                stage: SmStage::FaultSquash,
                sm,
                slot,
                warp,
                idx,
                cycle: now,
            });
            return;
        };
        let e = w.inflight.remove(pos);
        if !e.srcs_released {
            w.sb.release_sources(e.srcs.iter().flatten().copied());
        }
        w.sb.release_dest(e.dst);
        if e.log_slots > 0 {
            if let Some(log) = &mut self.log {
                log.release(slot, e.log_slots);
            }
        }
        // Insert in program order (multiple instructions can fault).
        let at = w.replay.iter().position(|&r| r > idx).unwrap_or(w.replay.len());
        w.replay.insert(at, idx);
        self.stats.peak_replay_entries = self.stats.peak_replay_entries.max(w.replay.len() as u64);
        // The warp parks; younger fetched-but-unissued instructions flush
        // and will re-fetch after the replay drains.
        count_transition(&mut self.active_warps, b.state, w.state, WarpState::Faulted);
        w.state = WarpState::Faulted;
        w.ibuffer.clear();
        w.next_fetch = w.next_issue;
        w.fetch_block = FetchBlock::None;
        let mut regions: Vec<u64> = pages.iter().map(|&p| region_of(p)).collect();
        regions.sort_unstable();
        regions.dedup();
        for &r in &regions {
            if !w.waiting_regions.contains(&r) {
                w.waiting_regions.push(r);
            }
        }
        self.notices.push(FaultNotice { slot, warp, queue_pos, regions });
    }

    /// Commit `idx` of `warp` in `slot` (out-of-order commit stage).
    ///
    /// If the instruction raises an arithmetic exception (and the scheme is
    /// preemptible), it is squashed instead: the warp runs the trap handler
    /// and replays the instruction afterwards — the paper's extension of
    /// the schemes to non-memory exceptions (Sections 3.1/3.2).
    fn commit(&mut self, now: Cycle, slot: u32, warp: u32, idx: usize) {
        if self.scheme.preemptible() && self.trap_if_needed(now, slot, warp, idx) {
            return;
        }
        self.record(slot, warp, idx, ProbeStage::Commit, now);
        let Some(b) = self.slots[slot as usize].as_mut() else { return };
        let w = &mut b.warps[warp as usize];
        let Some(pos) = w.inflight.iter().position(|e| e.idx == idx) else {
            let sm = self.sm_id;
            self.fail(SmError::InflightMissing {
                stage: SmStage::Commit,
                sm,
                slot,
                warp,
                idx,
                cycle: now,
            });
            return;
        };
        let e = w.inflight.remove(pos);
        if !e.srcs_released {
            w.sb.release_sources(e.srcs.iter().flatten().copied());
        }
        w.sb.release_dest(e.dst);
        if e.log_slots > 0 {
            if let Some(log) = &mut self.log {
                log.release(slot, e.log_slots);
            }
        }
        if let Some(t) = e.token {
            self.tokens.remove(&t);
        }
        // Fetch re-enable points: branches at commit (baseline), WD at
        // commit (WD-commit; WD-lastcheck normally re-enabled earlier, but
        // commit also clears it as a safety net).
        match w.fetch_block {
            FetchBlock::Branch(i) if i == idx => w.fetch_block = FetchBlock::None,
            FetchBlock::Wd(i) if i == idx => w.fetch_block = FetchBlock::None,
            _ => {}
        }
        self.stats.committed += 1;
        *self.retired.entry((b.block_id, warp)).or_insert(0) += 1;
        let instr = &b.trace.warps[warp as usize].instrs[idx];
        if instr.kind == DynKind::Barrier {
            b.barrier_arrived += 1;
        }
        self.after_progress(slot, warp);
    }

    /// Squash a trapping instruction at its would-be commit point and run
    /// the handler. Returns true if a trap was taken (first execution only;
    /// the replay commits normally).
    fn trap_if_needed(&mut self, now: Cycle, slot: u32, warp: u32, idx: usize) -> bool {
        let Some(b) = self.slots[slot as usize].as_mut() else { return false };
        let instr = &b.trace.warps[warp as usize].instrs[idx];
        if !instr.traps {
            return false;
        }
        let w = &mut b.warps[warp as usize];
        if w.trap_handled.contains(&idx) {
            return false; // replay after the handler: commit normally
        }
        let Some(pos) = w.inflight.iter().position(|e| e.idx == idx) else {
            let sm = self.sm_id;
            self.fail(SmError::InflightMissing {
                stage: SmStage::Trap,
                sm,
                slot,
                warp,
                idx,
                cycle: now,
            });
            return true;
        };
        let e = w.inflight.remove(pos);
        if !e.srcs_released {
            w.sb.release_sources(e.srcs.iter().flatten().copied());
        }
        w.sb.release_dest(e.dst);
        let at = w.replay.iter().position(|&r| r > idx).unwrap_or(w.replay.len());
        w.replay.insert(at, idx);
        w.trap_handled.push(idx);
        count_transition(&mut self.active_warps, b.state, w.state, WarpState::Trapped);
        w.state = WarpState::Trapped;
        w.ibuffer.clear();
        w.next_fetch = w.next_issue;
        w.fetch_block = FetchBlock::None;
        self.record(slot, warp, idx, ProbeStage::Fault, now);
        self.stats.squashed += 1;
        self.stats.traps += 1;
        self.schedule(now + self.cfg.trap_handler_cycles, SmEv::TrapDone { slot, warp });
        true
    }

    /// Check warp-done, barrier release and block completion for `slot`.
    fn after_progress(&mut self, slot: u32, warp: u32) {
        let Some(b) = self.slots[slot as usize].as_mut() else { return };
        let trace_len = b.trace.warps[warp as usize].instrs.len();
        {
            let w = &mut b.warps[warp as usize];
            if w.state != WarpState::Done
                && w.next_issue >= trace_len
                && w.replay.is_empty()
                && w.inflight.is_empty()
            {
                count_transition(&mut self.active_warps, b.state, w.state, WarpState::Done);
                w.state = WarpState::Done;
            }
        }
        // Barrier release: every non-done warp has arrived.
        let total = b.warps.len() as u32;
        let done = b.warps.iter().filter(|w| w.state == WarpState::Done).count() as u32;
        let at_bar = b.warps.iter().filter(|w| w.state == WarpState::AtBarrier).count() as u32;
        if at_bar > 0 && b.barrier_arrived >= at_bar && at_bar + done == total {
            b.barrier_arrived = 0;
            for w in &mut b.warps {
                if w.state == WarpState::AtBarrier {
                    count_transition(
                        &mut self.active_warps,
                        b.state,
                        w.state,
                        WarpState::Active,
                    );
                    w.state = WarpState::Active;
                }
            }
            self.stats.barriers += 1;
        }
        if done == total {
            let id = b.block_id;
            self.slots[slot as usize] = None;
            if let Some(log) = &mut self.log {
                log.reset_partition(slot);
            }
            self.completed.push(id);
            self.stats.blocks_completed += 1;
        }
    }

    // ------------------------------------------------------------ issue

    fn issue(&mut self, now: Cycle, mem: &mut MemSystem) {
        let width = self.cfg.issue_width;
        let nslots = self.slots.len();
        if nslots == 0 {
            return;
        }
        let mut issued = 0u32;
        let mut warps_used: [(u32, u32); 2] = [(u32::MAX, u32::MAX); 2];
        let mut warps_used_n = 0usize;
        // Enumerate (slot, warp) pairs in a loose round-robin.
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        for s in 0..nslots {
            if let Some(b) = &self.slots[s] {
                if b.state != BlockState::Running {
                    continue;
                }
                for w in 0..b.warps.len() {
                    order.push((s as u32, w as u32));
                }
            }
        }
        if order.is_empty() {
            self.order_buf = order;
            self.stats.idle_issue_cycles += 1;
            return;
        }
        match self.cfg.scheduler {
            SchedulerPolicy::LooseRoundRobin => {
                let start = self.issue_rr % order.len();
                order.rotate_left(start);
                self.issue_rr = self.issue_rr.wrapping_add(1);
            }
            SchedulerPolicy::GreedyThenOldest => {
                // The greedy warp goes first; the rest stay in age order
                // (slot then warp index).
                if let Some(g) = self.greedy_warp {
                    if let Some(pos) = order.iter().position(|&w| w == g) {
                        order.remove(pos);
                        order.insert(0, g);
                    }
                }
            }
        }

        for &(slot, warp) in &order {
            if issued >= width {
                break;
            }
            if warps_used_n >= 2 && !warps_used[..warps_used_n].contains(&(slot, warp)) {
                continue;
            }
            // Issue as many as allowed from this warp, in program order.
            while issued < width {
                if !self.try_issue_one(now, mem, slot, warp) {
                    break;
                }
                issued += 1;
                self.greedy_warp = Some((slot, warp));
                if !warps_used[..warps_used_n].contains(&(slot, warp)) {
                    warps_used[warps_used_n] = (slot, warp);
                    warps_used_n += 1;
                }
            }
        }
        self.order_buf = order;
        if issued == 0 {
            self.stats.idle_issue_cycles += 1;
        }
    }

    /// Try to issue the next instruction of `warp`; returns true on issue.
    fn try_issue_one(&mut self, now: Cycle, mem: &mut MemSystem, slot: u32, warp: u32) -> bool {
        let Some(b) = self.slots[slot as usize].as_ref() else { return false };
        let w = &b.warps[warp as usize];
        if w.state != WarpState::Active {
            return false;
        }
        // Next instruction: replay entries first, then the ibuffer.
        let (idx, from_replay) = if let Some(&r) = w.replay.front() {
            (r, true)
        } else if let Some(&i) = w.ibuffer.front() {
            (i, false)
        } else {
            return false;
        };
        let instr = &b.trace.warps[warp as usize].instrs[idx];
        // Scoreboard.
        if !w.sb.can_issue(instr.src_iter(), instr.dst) {
            let raw = instr.src_iter().any(|s| !w.sb.can_issue([s], None));
            if raw {
                self.stats.stall_raw += 1;
            } else {
                self.stats.stall_war += 1;
            }
            return false;
        }
        // Execution unit.
        let interval = self.initiation_interval(instr);
        if !self.exec.available(instr.unit, now) {
            self.stats.stall_unit += 1;
            return false;
        }
        // Operand log capacity.
        let log_slots = if self.log.is_some() { instr.log_slots() } else { 0 };
        if log_slots > 0 && !self.log.as_ref().expect("log").can_allocate(slot, log_slots) {
            self.stats.stall_log += 1;
            return false;
        }

        // --- All gates passed: issue. ---
        let reserved = self.exec.reserve(instr.unit, now, interval);
        debug_assert!(reserved);
        if log_slots > 0 {
            let ok = self.log.as_mut().expect("log").allocate(slot, log_slots);
            debug_assert!(ok);
        }
        let is_global = instr.can_fault();
        let dst = instr.dst;
        let srcs = instr.srcs;
        let kind = instr.kind;
        let op = instr.op;
        // Borrow the coalesced line list straight from the trace: the
        // memory system and the latency model only read it, so no per-issue
        // clone is needed — everything that uses it runs before the slot is
        // re-borrowed mutably below.
        let lines: &[u64] = instr.mem.as_ref().map(|m| m.lines.as_slice()).unwrap_or(&[]);
        let warp_disable = self.scheme.warp_disable();
        let mut token = None;
        if is_global {
            let access_kind = match op {
                Opcode::Atom(..) => AccessKind::Atomic,
                Opcode::St(..) => AccessKind::Store,
                _ => AccessKind::Load,
            };
            // The access starts after the operand-read stage.
            let t = mem.start_access(now + 1, self.sm_id, access_kind, lines);
            self.tokens.insert(t, (slot, warp, idx));
            token = Some(t);
        }
        let fixed_done = (!is_global).then(|| now + 1 + self.fixed_latency(op, kind, lines));
        {
            let b = self.slots[slot as usize].as_mut().expect("slot checked above");
            let w = &mut b.warps[warp as usize];
            w.sb.issue(srcs.iter().flatten().copied(), dst);
            if from_replay {
                w.replay.pop_front();
            } else {
                w.ibuffer.pop_front();
                w.next_issue = idx + 1;
            }
            // Warp-disable: the barrier semantics follow the instruction
            // through replay too.
            if is_global && warp_disable {
                w.fetch_block = FetchBlock::Wd(idx);
            }
            w.inflight.push(Inflight { idx, dst, srcs, token, srcs_released: false, log_slots });
            if kind == DynKind::Barrier {
                count_transition(&mut self.active_warps, b.state, w.state, WarpState::AtBarrier);
                w.state = WarpState::AtBarrier;
            }
        }
        let srcs_deferred = is_global && self.scheme.delayed_source_release();
        if !srcs_deferred {
            self.schedule(now + 1, SmEv::SrcRelease { slot, warp, idx });
        }
        if let Some(done) = fixed_done {
            self.schedule(done, SmEv::Complete { slot, warp, idx });
        }
        self.stats.issued += 1;
        self.record(slot, warp, idx, ProbeStage::Issue, now);
        true
    }

    fn initiation_interval(&self, instr: &DynInstr) -> Cycle {
        match instr.unit {
            Unit::Math | Unit::Branch => 1,
            Unit::Sfu => self.cfg.sfu_interval,
            Unit::LdSt => match &instr.mem {
                Some(m) if m.space == Space::Global && !m.lines.is_empty() => {
                    m.lines.len() as Cycle
                }
                _ => 2,
            },
        }
    }

    fn fixed_latency(&self, op: Opcode, kind: DynKind, lines: &[u64]) -> Cycle {
        match op {
            Opcode::Malloc => self.cfg.malloc_latency,
            Opcode::Ld(Space::Shared, _) | Opcode::St(Space::Shared, _) => self.cfg.shared_latency,
            // A fully predicated-off global access never leaves the SM.
            Opcode::Ld(..) | Opcode::St(..) | Opcode::Atom(..) if lines.is_empty() => 1,
            _ if kind != DynKind::Normal => self.cfg.branch_latency,
            _ if op.unit() == Unit::Sfu => self.cfg.sfu_latency,
            _ => self.cfg.alu_latency,
        }
    }

    // ------------------------------------------------------------ fetch

    fn fetch(&mut self, _now: Cycle) {
        // One warp per cycle refills its ibuffer with up to fetch_width
        // instructions.
        let mut order = std::mem::take(&mut self.order_buf);
        order.clear();
        for s in 0..self.slots.len() {
            if let Some(b) = &self.slots[s] {
                if b.state != BlockState::Running {
                    continue;
                }
                for w in 0..b.warps.len() {
                    order.push((s as u32, w as u32));
                }
            }
        }
        if order.is_empty() {
            self.order_buf = order;
            return;
        }
        let start = self.fetch_rr % order.len();
        order.rotate_left(start);
        self.fetch_rr = self.fetch_rr.wrapping_add(1);

        for &(slot, warp) in &order {
            let b = self.slots[slot as usize].as_mut().expect("enumerated above");
            let trace = &b.trace.warps[warp as usize].instrs;
            let w = &mut b.warps[warp as usize];
            if w.state != WarpState::Active && w.state != WarpState::AtBarrier {
                continue;
            }
            if w.fetch_block != FetchBlock::None {
                self.stats.fetch_blocked += 1;
                continue;
            }
            if w.ibuffer.len() as u32 >= self.cfg.ibuffer_entries || w.next_fetch >= trace.len() {
                continue;
            }
            // This warp fetches this cycle.
            for _ in 0..self.cfg.fetch_width {
                if w.ibuffer.len() as u32 >= self.cfg.ibuffer_entries
                    || w.next_fetch >= trace.len()
                {
                    break;
                }
                let idx = w.next_fetch;
                w.ibuffer.push_back(idx);
                w.next_fetch += 1;
                let instr = &trace[idx];
                if instr.op.is_control() {
                    w.fetch_block = FetchBlock::Branch(idx);
                    break;
                }
                if self.scheme.warp_disable() && instr.can_fault() {
                    w.fetch_block = FetchBlock::Wd(idx);
                    break;
                }
            }
            break; // only one warp fetches per cycle
        }
        self.order_buf = order;
    }
}
