//! # gex-serve — a crash-safe, multi-tenant campaign server
//!
//! A long-running daemon that accepts simulation campaigns (grids of
//! `workload x scheme` points) over a line-oriented TCP protocol and runs
//! them on the persistent `gex-exec` worker pool under the full
//! [`gex::supervise`] stack: panic isolation, deadline retry with budget
//! escalation, and per-point quarantine.
//!
//! On top of the batch supervisor it adds the properties a *shared*,
//! *long-lived* service needs:
//!
//! * **Admission control** — queue depth and campaign count are bounded;
//!   a submit past either bound is load-shed with an explicit `shed`
//!   reply instead of being silently queued into unbounded memory.
//! * **Tenant fairness** — pending points are dispatched by credit-based
//!   weighted round-robin across tenants ([`tenant::TenantScheduler`]),
//!   so one tenant's thousand-point campaign cannot starve another's
//!   ten-point grid.
//! * **Per-tenant fault budgets** — a tenant whose points keep failing
//!   (panics, exhausted deadlines, fatal errors) has all of its campaigns
//!   quarantined: running points cancelled, queued points shed unrun, new
//!   submits rejected. Other tenants are unaffected.
//! * **Crash safety** — every accepted campaign is persisted (manifest +
//!   journal + quarantine sidecar) before it is acknowledged; a `kill -9`
//!   at any instant loses at most mid-flight points, and a restart with
//!   the same journal directory resumes every campaign, reproducing
//!   byte-identical results (the simulator is deterministic).
//!
//! ## In-process quickstart
//!
//! ```
//! use gex_serve::{server, Client, ClientConfig, CampaignSpec};
//! use gex::{Preset, Scheme};
//!
//! let handle = server::start(server::ServerConfig::default()).unwrap();
//! let mut client = Client::connect(&handle.addr().to_string(),
//!                                  ClientConfig::default()).unwrap();
//! let spec = CampaignSpec::new(
//!     Preset::Test, 2,
//!     vec!["histo".to_string()],
//!     vec![Scheme::Baseline, Scheme::ReplayQueue],
//! );
//! client.submit("alice", "quick", &spec).unwrap();
//! let done = client.wait("alice", "quick",
//!                        std::time::Duration::from_millis(20)).unwrap();
//! assert_eq!(done.state, "done");
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{Client, ClientConfig, ClientError};
pub use server::{start, ServerConfig, ServerHandle};
pub use wire::{CampaignSpec, Event, Inject, PointResult, Request, StatusReply};
