//! # gex-mem — the GPU memory system
//!
//! Cycle-level models of everything below the SM's load/store unit in the
//! baseline GPU of the paper (Figure 1 and Table 1):
//!
//! * per-SM L1 data caches and a shared L2, both set-associative with true
//!   LRU and finite [MSHR](mshr::MshrTable) tables;
//! * per-SM L1 TLBs, a shared L2 TLB and a fill unit with a pool of
//!   page-table walkers;
//! * a bandwidth/latency [DRAM channel](dram::Dram);
//! * the GPU [page table](page_table::PageTable) with the page-ownership
//!   states demand paging needs, and the fill unit's global
//!   [pending-fault queue](fault::FaultQueue);
//! * a [physical-frame allocator](phys::PhysAllocator) used by both the
//!   CPU-driver and GPU-local fault handlers.
//!
//! The central type is [`MemSystem`], which SMs drive
//! with coalesced warp accesses and which reports the three events the
//! paper's pipeline schemes hinge on: *last TLB check*, *fault* and *data
//! complete*.

#![warn(missing_docs)]

pub mod config;
pub mod dram;
pub mod fault;
pub mod large;
pub mod mshr;
pub mod page_table;
pub mod phys;
pub mod setassoc;
pub mod system;
pub mod tlb;
pub mod wake;

pub use config::{CacheConfig, Cycle, MemConfig, TlbConfig};
pub use wake::WakeMemo;
pub use fault::{FaultAdmission, FaultEntry, FaultKind, FaultQueue};
pub use large::{
    default_page_size, frame_of, set_default_page_size, LpStats, PageSizePolicy,
    LARGE_PAGE_BYTES, REGIONS_PER_LARGE, SUBPAGES_PER_LARGE,
};
pub use page_table::{region_of, PageState, PageTable, REGION_BYTES, REGION_PAGES};
pub use system::{AccessEvent, AccessKind, AccessToken, FaultMode, MemError, MemStats, MemSystem};
pub use tlb::TlbSizeStats;
