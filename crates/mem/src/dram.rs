//! DRAM timing: fixed access latency plus a finite-bandwidth channel.
//!
//! Table 1 specifies 256 GB/s and 200-cycle latency at 1 GHz, i.e. 256
//! bytes per cycle. The channel is modelled as a single queue whose service
//! time per transfer is `bytes / bytes_per_cycle`; a request completes at
//! `channel_free_time + service_time + latency`. Context-switch transfers
//! (use case 1) go through the same channel, so they contend with demand
//! traffic exactly as the paper's cost model requires.

use crate::config::Cycle;

/// The DRAM channel model.
#[derive(Debug, Clone)]
pub struct Dram {
    latency: Cycle,
    bytes_per_cycle: u64,
    /// Time the channel becomes free, in *half-cycles* so that a 128-byte
    /// line on a 256 B/cycle channel (0.5 cycles) accumulates exactly.
    free_half: u64,
    /// Total bytes transferred (stats).
    bytes_moved: u64,
    /// Total transfers (stats).
    transfers: u64,
}

impl Dram {
    /// A channel with the given latency and bandwidth.
    pub fn new(latency: Cycle, bytes_per_cycle: u64) -> Self {
        assert!(bytes_per_cycle > 0, "zero-bandwidth DRAM");
        Dram { latency, bytes_per_cycle, free_half: 0, bytes_moved: 0, transfers: 0 }
    }

    /// Schedule a transfer of `bytes` starting no earlier than `now`.
    /// Returns the cycle at which the data is available.
    pub fn transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start_half = self.free_half.max(now * 2);
        let service_half = (bytes * 2).div_ceil(self.bytes_per_cycle).max(1);
        self.free_half = start_half + service_half;
        self.bytes_moved += bytes;
        self.transfers += 1;
        self.free_half.div_ceil(2) + self.latency
    }

    /// Occupy the channel for `bytes` without the access latency — used for
    /// bulk context save/restore where the completion is the end of the
    /// stream, not first-word latency.
    pub fn bulk_transfer(&mut self, now: Cycle, bytes: u64) -> Cycle {
        let start_half = self.free_half.max(now * 2);
        let service_half = (bytes * 2).div_ceil(self.bytes_per_cycle).max(1);
        self.free_half = start_half + service_half;
        self.bytes_moved += bytes;
        self.transfers += 1;
        self.free_half.div_ceil(2)
    }

    /// First cycle at which the channel is free.
    pub fn free_at(&self) -> Cycle {
        self.free_half.div_ceil(2)
    }

    /// Total bytes moved so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Total transfers so far.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unloaded_latency_dominates() {
        let mut d = Dram::new(200, 256);
        // One 128B line: 0.5 cycles of bandwidth + 200 latency.
        assert_eq!(d.transfer(0, 128), 201);
    }

    #[test]
    fn bandwidth_serializes_back_to_back_lines() {
        let mut d = Dram::new(200, 256);
        // 4 lines at cycle 0: each occupies half a cycle of channel time.
        let t: Vec<Cycle> = (0..4).map(|_| d.transfer(0, 128)).collect();
        assert_eq!(t, vec![201, 201, 202, 202]);
        assert_eq!(d.bytes_moved(), 512);
    }

    #[test]
    fn channel_idles_until_now() {
        let mut d = Dram::new(200, 256);
        d.transfer(0, 128);
        // A request at cycle 1000 does not benefit from earlier idle time.
        assert_eq!(d.transfer(1000, 256), 1201);
    }

    #[test]
    fn saturated_channel_throughput_is_bandwidth_bound() {
        let mut d = Dram::new(200, 256);
        let n = 1000u64;
        let mut last = 0;
        for _ in 0..n {
            last = d.transfer(0, 128);
        }
        // 1000 lines * 0.5 cycles = 500 cycles of channel + 200 latency.
        assert_eq!(last, 700);
    }

    #[test]
    fn bulk_transfer_has_no_first_word_latency() {
        let mut d = Dram::new(200, 256);
        // 256 KB register file at 256 B/cycle = 1024 cycles.
        assert_eq!(d.bulk_transfer(0, 256 * 1024), 1024);
        assert_eq!(d.free_at(), 1024);
    }
}
