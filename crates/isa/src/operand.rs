//! Instruction source operands.

use crate::reg::{Reg, SpecialReg};
use std::fmt;

/// A source operand of an instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A general-purpose register.
    Reg(Reg),
    /// A 64-bit immediate (sign pattern preserved; float immediates store
    /// the f32 bit pattern in the low 32 bits).
    Imm(u64),
    /// A read-only special register (thread/block coordinates).
    Special(SpecialReg),
    /// Kernel parameter `i` (a launch argument, e.g. a buffer base address).
    ///
    /// Real GPUs read parameters from constant memory; modelling them as
    /// zero-latency operands removes a constant factor common to every
    /// scheme without affecting any relative result.
    Param(u8),
}

impl Operand {
    /// Construct a float immediate from an `f32` value.
    pub fn imm_f32(v: f32) -> Self {
        Operand::Imm(v.to_bits() as u64)
    }

    /// The register read by this operand, if any. Only `Reg` operands
    /// participate in scoreboarding; specials, params and immediates are
    /// hazard-free.
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            _ => None,
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<u64> for Operand {
    fn from(v: u64) -> Self {
        Operand::Imm(v)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::Imm(v as u64)
    }
}

impl From<SpecialReg> for Operand {
    fn from(s: SpecialReg) -> Self {
        Operand::Special(s)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v:#x}"),
            Operand::Special(s) => write!(f, "{s}"),
            Operand::Param(i) => write!(f, "param[{i}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Operand::from(Reg(4)), Operand::Reg(Reg(4)));
        assert_eq!(Operand::from(16u64), Operand::Imm(16));
        assert_eq!(Operand::from(-1i64), Operand::Imm(u64::MAX));
        assert_eq!(Operand::imm_f32(1.0), Operand::Imm(0x3f80_0000));
    }

    #[test]
    fn only_regs_scoreboard() {
        assert_eq!(Operand::Reg(Reg(7)).reg(), Some(Reg(7)));
        assert_eq!(Operand::Imm(0).reg(), None);
        assert_eq!(Operand::Special(SpecialReg::TidX).reg(), None);
        assert_eq!(Operand::Param(0).reg(), None);
    }
}
