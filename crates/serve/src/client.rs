//! Client library for the campaign server.
//!
//! A thin, retrying wrapper over the JSON-lines protocol: connects with
//! bounded exponential backoff (a daemon restarting after a crash is the
//! expected case, not an error), applies socket timeouts so a wedged
//! server can't hang the caller, and surfaces the server's explicit
//! load-shed rejections as their own error variant so callers can back
//! off rather than treat shedding as failure.

use crate::wire::{self, CampaignSpec, Event, PointResult, Request, StatusReply};
use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Connection and retry policy.
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Connection attempts before giving up (each request that hits an
    /// I/O error also reconnects up to this many times).
    pub connect_retries: u32,
    /// Backoff before the first retry; doubles per attempt.
    pub backoff: Duration,
    /// Socket read/write timeout — a stuck server surfaces as an error,
    /// never a hang. Watch streams use it per event, so it must exceed
    /// the expected gap between events.
    pub timeout: Duration,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            connect_retries: 5,
            backoff: Duration::from_millis(50),
            timeout: Duration::from_secs(120),
        }
    }
}

/// How a client call fails.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure after exhausting retries.
    Io(io::Error),
    /// The server load-shed the request (admission control): valid,
    /// explicit back-pressure — retry later or at lower volume.
    Shed(String),
    /// The server rejected the request (unknown campaign, bad spec,
    /// quarantined tenant, name conflict, ...).
    Rejected(String),
    /// The server answered with something the protocol doesn't allow.
    Protocol(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o: {e}"),
            ClientError::Shed(m) => write!(f, "load shed: {m}"),
            ClientError::Rejected(m) => write!(f, "rejected: {m}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected campaign-server client.
pub struct Client {
    addr: String,
    cfg: ClientConfig,
    reader: BufReader<TcpStream>,
}

fn connect_once(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no addresses resolved");
    for sa in addr.to_socket_addrs()? {
        match TcpStream::connect_timeout(&sa, timeout) {
            Ok(s) => {
                s.set_read_timeout(Some(timeout))?;
                s.set_write_timeout(Some(timeout))?;
                return Ok(s);
            }
            Err(e) => last = e,
        }
    }
    Err(last)
}

impl Client {
    /// Connect to `addr` with bounded retry/backoff: attempts are spaced
    /// `backoff`, `2*backoff`, `4*backoff`, ... so a daemon still coming
    /// up (or restarting after a kill) is tolerated without spinning.
    pub fn connect(addr: &str, cfg: ClientConfig) -> io::Result<Client> {
        let mut delay = cfg.backoff;
        let mut attempt = 0;
        loop {
            match connect_once(addr, cfg.timeout) {
                Ok(stream) => {
                    return Ok(Client {
                        addr: addr.to_string(),
                        cfg,
                        reader: BufReader::new(stream),
                    })
                }
                Err(_) if attempt < cfg.connect_retries => {
                    attempt += 1;
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Connect with the default config.
    pub fn connect_default(addr: &str) -> io::Result<Client> {
        Client::connect(addr, ClientConfig::default())
    }

    fn send_line(&mut self, line: &str) -> io::Result<()> {
        let stream = self.reader.get_mut();
        stream.write_all(line.as_bytes())?;
        stream.write_all(b"\n")?;
        stream.flush()
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }

    /// One request/reply exchange, reconnecting (bounded, backed off) on
    /// transport errors. Safe because every request in the protocol is
    /// idempotent — a replayed submit attaches to the already-admitted
    /// campaign instead of duplicating it.
    fn exchange(&mut self, request: &Request) -> io::Result<String> {
        let line = request.encode();
        let mut delay = self.cfg.backoff;
        let mut attempt = 0;
        loop {
            let result = self.send_line(&line).and_then(|()| self.read_line());
            match result {
                Ok(reply) => return Ok(reply),
                Err(_) if attempt < self.cfg.connect_retries => {
                    attempt += 1;
                    std::thread::sleep(delay);
                    delay = delay.saturating_mul(2);
                    if let Ok(stream) = connect_once(&self.addr, self.cfg.timeout) {
                        self.reader = BufReader::new(stream);
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn expect_status(reply: &str) -> Result<StatusReply, ClientError> {
        StatusReply::parse(reply).map_err(|e| {
            if wire::is_shed(reply) {
                ClientError::Shed(e)
            } else {
                ClientError::Rejected(e)
            }
        })
    }

    /// Submit a campaign. Returns its admission-time status (which
    /// already reflects journal-resumed points). Re-submitting an
    /// identical spec attaches to the existing campaign.
    pub fn submit(
        &mut self,
        tenant: &str,
        campaign: &str,
        spec: &CampaignSpec,
    ) -> Result<StatusReply, ClientError> {
        let reply = self.exchange(&Request::Submit {
            tenant: tenant.to_string(),
            campaign: campaign.to_string(),
            spec: spec.clone(),
        })?;
        Client::expect_status(&reply)
    }

    /// Progress counters for a campaign.
    pub fn status(&mut self, tenant: &str, campaign: &str) -> Result<StatusReply, ClientError> {
        let reply = self.exchange(&Request::Status {
            tenant: tenant.to_string(),
            campaign: campaign.to_string(),
        })?;
        Client::expect_status(&reply)
    }

    /// Per-point results (cycles, quarantine diagnostics, or pending
    /// markers for a still-running campaign), plus the status header.
    pub fn results(
        &mut self,
        tenant: &str,
        campaign: &str,
    ) -> Result<(StatusReply, Vec<PointResult>), ClientError> {
        let reply = self.exchange(&Request::Results {
            tenant: tenant.to_string(),
            campaign: campaign.to_string(),
        })?;
        let header = Client::expect_status(&reply)?;
        let mut points = Vec::with_capacity(header.points as usize);
        loop {
            let line = self.read_line()?;
            if gex::journal::field_u64(&line, "end") == Some(1) {
                return Ok((header, points));
            }
            points.push(PointResult::parse(&line).map_err(ClientError::Protocol)?);
        }
    }

    /// Cancel a campaign; returns its post-cancel status.
    pub fn cancel(&mut self, tenant: &str, campaign: &str) -> Result<StatusReply, ClientError> {
        let reply = self.exchange(&Request::Cancel {
            tenant: tenant.to_string(),
            campaign: campaign.to_string(),
        })?;
        Client::expect_status(&reply)
    }

    /// Stream a campaign's events into `on_event` until it reaches a
    /// terminal state (returned). Events already emitted before the watch
    /// attached are replayed first, so a late watcher still sees every
    /// completed point.
    pub fn watch(
        &mut self,
        tenant: &str,
        campaign: &str,
        mut on_event: impl FnMut(&Event),
    ) -> Result<String, ClientError> {
        let reply = self.exchange(&Request::Watch {
            tenant: tenant.to_string(),
            campaign: campaign.to_string(),
        })?;
        if gex::journal::field_str(&reply, "watching").is_none() {
            return Err(if wire::is_shed(&reply) {
                ClientError::Shed(wire::error_of(&reply))
            } else {
                ClientError::Rejected(wire::error_of(&reply))
            });
        }
        loop {
            let line = self.read_line()?;
            let event = Event::parse(&line).map_err(ClientError::Protocol)?;
            on_event(&event);
            if let Event::State { state } = &event {
                if wire::state::is_terminal(state) {
                    return Ok(state.clone());
                }
            }
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let reply = self.exchange(&Request::Ping)?;
        if gex::journal::field_u64(&reply, "pong") == Some(1) {
            Ok(())
        } else {
            Err(ClientError::Protocol(format!("unexpected ping reply: {reply}")))
        }
    }

    /// Ask the daemon to stop (in-flight waves finish and journal).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        // No reconnect-retry here: replaying shutdown against a daemon
        // that just restarted would kill the fresh instance.
        self.send_line(&Request::Shutdown.encode())?;
        let _ = self.read_line();
        Ok(())
    }

    /// Block until the campaign is terminal, polling `status` every
    /// `interval`; returns the final status.
    pub fn wait(
        &mut self,
        tenant: &str,
        campaign: &str,
        interval: Duration,
    ) -> Result<StatusReply, ClientError> {
        loop {
            let s = self.status(tenant, campaign)?;
            if wire::state::is_terminal(&s.state) {
                return Ok(s);
            }
            std::thread::sleep(interval);
        }
    }
}
