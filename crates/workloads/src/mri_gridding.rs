//! `mri-gridding` — k-space gridding scatter (Parboil).
//!
//! Samples scatter onto a regular grid with atomics. The defining trait the
//! paper analyzes (Section 5.3) is **massive load imbalance**: thread-block
//! execution times differ by two orders of magnitude, which makes the
//! benchmark *lose* performance under block switching (0.85x) because
//! reordering the long blocks ruins the accidental balance of the original
//! distribution. We reproduce the imbalance with a deterministic sample
//! count per block: most blocks process a handful of samples, every 23rd
//! block processes ~100x more.

use crate::types::{BufferKind, BufferSpec, Preset, VaAlloc, Workload};
use gex_isa::asm::Asm;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{CmpKind, CmpType};
use gex_isa::reg::{Pred, Reg};
use gex_prng::Prng;

fn config(preset: Preset) -> (u32, u64, u64) {
    // (blocks, light iterations, heavy iterations)
    match preset {
        Preset::Test => (24, 2, 128),
        Preset::Bench => (384, 5, 250),
        Preset::Paper => (768, 5, 350),
    }
}

/// Grid cells in the output.
const GRID_CELLS: u64 = 16 * 1024;

/// Build the `mri-gridding` workload.
pub fn build(preset: Preset) -> Workload {
    let (blocks, light, heavy) = config(preset);
    let samples = blocks as u64 * heavy; // generous sample pool
    let mut va = VaAlloc::new();
    let sample_buf = va.alloc(samples * 8); // (coordinate, weight)
    let grid = va.alloc(GRID_CELLS * 4);

    let mut a = Asm::new();
    let (bid, tid, iters, i) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let (addr, coord, wgt, cell) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let (t, old) = (Reg(8), Reg(9));
    let p = Pred(0);
    let q = Pred(1);

    a.flat_ctaid(bid);
    a.flat_tid(tid);
    // iters = (bid % 23 == 0) ? heavy : light — two orders of magnitude of
    // block-level imbalance (23 is coprime to the 16-SM round-robin, so
    // the initial dispatch lands heavy blocks on distinct SMs, matching
    // the paper's "the original thread block distribution ... happens to
    // almost evenly spread the longest blocks across the SMs").
    a.rem(t, bid, 23u64);
    a.setp(q, CmpKind::Eq, CmpType::U64, t, 0u64);
    a.sel(iters, q, heavy, light);
    a.mov(i, 0u64);
    a.label("sloop");
    // sample index = (bid * heavy + i*warp-spread + tid) % samples
    a.mul(addr, bid, heavy);
    a.mad(addr, i, 128u64, addr);
    a.add(addr, addr, tid);
    a.rem(addr, addr, samples);
    a.shl_imm(addr, addr, 3);
    a.add(addr, addr, sample_buf);
    a.ld_global_u32(coord, addr, 0);
    a.ld_global_u32(wgt, addr, 4);
    // weight shaping: w' = w * rsqrt(coord^2 + 1)
    a.fmul(t, coord, coord);
    a.mov_f32(old, 1.0);
    a.fadd(t, t, old);
    a.frsqrt(t, t);
    a.fmul(wgt, wgt, t);
    // The real pipeline bins and sorts samples first, so consecutive
    // samples scatter to nearby grid cells: cell = sample/4 plus a small
    // data-dependent jitter.
    a.shr_imm(cell, addr, 5); // recover a monotone sample ordinal
    a.mul(t, coord, 2654435761u64);
    a.shr_imm(t, t, 29); // 0..7 jitter
    a.add(cell, cell, t);
    a.and(cell, cell, GRID_CELLS - 1);
    a.shl_imm(cell, cell, 2);
    a.add(cell, cell, grid);
    a.atom_add_u32(old, cell, wgt);
    a.add(i, i, 1u64);
    a.setp(p, CmpKind::Lt, CmpType::U64, i, iters);
    a.bra_if("sloop", p, true);
    a.exit();

    let kernel = KernelBuilder::new("mri-gridding", a.assemble().expect("gridding assembles"))
        .grid(Dim3::x(blocks))
        .block(Dim3::x(128))
        .regs_per_thread(24)
        .build()
        .expect("mri-gridding kernel");

    let mut image = MemImage::new();
    let mut rng = Prng::seed_from_u64(0x321d);
    for s in 0..samples {
        image.write_f32(sample_buf + s * 8, rng.gen_range(-2.0f32..2.0));
        image.write_f32(sample_buf + s * 8 + 4, rng.gen_range(0.0f32..1.0));
    }

    Workload::build(
        "mri-gridding",
        &kernel,
        image,
        vec![
            BufferSpec {
                name: "samples",
                addr: sample_buf,
                len: samples * 8,
                kind: BufferKind::Input,
            },
            BufferSpec { name: "grid", addr: grid, len: GRID_CELLS * 4, kind: BufferKind::Output },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_orders_of_magnitude_block_imbalance() {
        let w = build(Preset::Test);
        let lens: Vec<u64> = w.trace.blocks.iter().map(|b| b.dyn_instrs()).collect();
        let min = *lens.iter().min().unwrap();
        let max = *lens.iter().max().unwrap();
        assert!(
            max >= min * 30,
            "paper reports two orders of magnitude of imbalance: {min} vs {max}"
        );
    }

    #[test]
    fn heavy_blocks_are_the_minority() {
        let w = build(Preset::Test);
        let lens: Vec<u64> = w.trace.blocks.iter().map(|b| b.dyn_instrs()).collect();
        let max = *lens.iter().max().unwrap();
        let heavy = lens.iter().filter(|&&l| l > max / 2).count();
        assert!(heavy * 8 <= lens.len(), "{heavy} heavy of {}", lens.len());
    }
}
