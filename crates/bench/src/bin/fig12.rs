//! Regenerate Figure 12: thread-block switching on fault, NVLink and PCIe.

use gex::Interconnect;

fn main() {
    gex_bench::apply_max_cycles_from_args();
    let preset = gex_bench::preset_from_args();
    let sms = gex_bench::sms_from_env();
    println!("{}", gex::experiments::fig12(preset, sms, Interconnect::nvlink()));
    println!("{}", gex::experiments::fig12(preset, sms, Interconnect::pcie()));
}
