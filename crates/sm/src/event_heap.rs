//! A next-event-cycle heap for idle-skipping tick loops.
//!
//! When every warp in the machine is waiting on an external event (a DRAM
//! response, a fault round trip, a context-switch transfer), the tick
//! loops jump the clock straight to the earliest upcoming event instead
//! of crawling cycle by cycle. The original implementation recomputed
//! that minimum with a linear scan over every component per idle
//! iteration — O(SMs) per query, which is the dominant cost of idle
//! windows once SM counts grow. [`NextEventHeap`] keeps the per-source
//! next-event cycles in a priority queue with *lazy invalidation*:
//!
//! * every source (the memory system, each SM, the CPU fault handler,
//!   the GPU-local handler, each local scheduler) has a stable index;
//! * a tick loop calls [`NextEventHeap::mark_dirty`] whenever it mutates
//!   a source in a way that can change its `next_event_cycle()`;
//! * [`NextEventHeap::earliest`] re-polls *only* the dirty sources,
//!   pushes their fresh values, and pops stale heap entries on the way
//!   to the minimum — O(dirty · log n) instead of O(n).
//!
//! Stale entries (an old value for a source whose current value moved)
//! stay in the heap until they surface; an entry is trusted only if it
//! matches the source's current value. Because every current value has
//! at least one matching entry, an empty heap means no source has any
//! upcoming event — exactly the `None` of the old linear scan.
//!
//! The produced minimum is *identical* to the linear scan by
//! construction (both reduce the same per-source values), which the
//! equivalence suite locks down by running whole campaigns in both
//! [`NextEventMode`]s and asserting byte-identical reports. Budget
//! deadlines, the forward-progress watchdog and the runaway cycle cap
//! are deliberately *not* heap sources: they clamp the jump target in
//! the tick loops (exactly as before), so each still fires at its exact
//! cycle.

use gex_mem::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How the tick loops find the next event cycle during idle windows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NextEventMode {
    /// Push-based wake events ([`WakeQueue`]); the default. Components
    /// push their exact next wake cycle at the moment they schedule
    /// work, so an idle query is a heap peek with zero re-polls.
    #[default]
    Push,
    /// Lazy-invalidation priority queue ([`NextEventHeap`]): dirty
    /// sources are re-polled per idle query (`GEX_NEXT_EVENT=heap`).
    Heap,
    /// The original linear scan over every component per idle iteration.
    /// The reference implementation for equivalence tests, and the A/B
    /// escape hatch (`GEX_NEXT_EVENT=scan`).
    Scan,
}

impl NextEventMode {
    /// The process default: [`NextEventMode::Push`] unless the
    /// environment says `GEX_NEXT_EVENT=heap` or `GEX_NEXT_EVENT=scan`.
    pub fn from_env() -> Self {
        static MODE: std::sync::OnceLock<NextEventMode> = std::sync::OnceLock::new();
        *MODE.get_or_init(|| match std::env::var("GEX_NEXT_EVENT") {
            Ok(v) if v.eq_ignore_ascii_case("scan") => NextEventMode::Scan,
            Ok(v) if v.eq_ignore_ascii_case("heap") => NextEventMode::Heap,
            _ => NextEventMode::Push,
        })
    }
}

/// A push-based wake-event queue: the zero-re-poll counterpart of
/// [`NextEventHeap`].
///
/// Components push their *exact* next wake cycle at the moment they
/// schedule work (a DRAM transfer completing, a fault service finishing,
/// an injector retry coming due), instead of being polled during idle
/// windows. The idle query is [`WakeQueue::earliest_after`].
///
/// Bucketed like the SM-internal `EventWheel`, not a heap: wakes within
/// [`WakeQueue::HORIZON`] cycles of the drained front land in a
/// power-of-two ring of per-cycle counters (O(1) push, duplicate pushes
/// just bump a counter instead of growing a heap), with a 64-bit summary
/// bitmap per 64 buckets so queries skip empty stretches a word at a
/// time. The horizon covers every configured latency (the longest is a
/// PCIe fault migration plus injected stall, ~45k cycles); anything
/// farther spills to a small overflow min-heap that is compacted when
/// duplicates pile up.
///
/// Correctness rests on one invariant the tick loops uphold: **at query
/// time, every event at or before `now` has already been consumed** (the
/// components were ticked this cycle, and components only schedule
/// strictly-future events). Under that invariant an entry `<= now` is
/// necessarily stale — its event fired and was handled — so discarding
/// it cannot lose a wake. It also means queries are monotonic in `now`
/// and pushes are always strictly above the drained front.
#[derive(Debug, Clone)]
pub struct WakeQueue {
    /// Wake counts per cycle for cycles in `(drained, drained + HORIZON]`,
    /// indexed by `cycle & (HORIZON - 1)`.
    near: Vec<u32>,
    /// One bit per bucket (64 per word): set iff the bucket is nonzero.
    summary: Vec<u64>,
    /// Total count held in `near`.
    near_pending: u64,
    /// Lower bound on the earliest cycle with a `near` entry (exact after
    /// a query; pushes below it pull it down). Meaningless when
    /// `near_pending == 0`.
    min_hint: Cycle,
    /// Every cycle `<= drained` has been consumed or discarded.
    drained: Cycle,
    /// Wakes beyond the ring horizon at push time.
    far: BinaryHeap<Reverse<Cycle>>,
    /// `far` length after the last compaction; growth beyond 2x triggers
    /// the next one.
    far_compacted: usize,
}

impl Default for WakeQueue {
    fn default() -> Self {
        WakeQueue::new()
    }
}

impl WakeQueue {
    /// Ring span in cycles (power of two). Sized past the longest
    /// configured wake distance — a PCIe migration round trip plus the
    /// worst injected stall — so the overflow heap stays cold.
    pub const HORIZON: Cycle = 1 << 16;

    /// An empty queue.
    pub fn new() -> Self {
        WakeQueue {
            near: vec![0; Self::HORIZON as usize],
            summary: vec![0; (Self::HORIZON as usize) / 64],
            near_pending: 0,
            min_hint: 0,
            drained: 0,
            far: BinaryHeap::new(),
            far_compacted: 0,
        }
    }

    /// Reset to empty while keeping the ring allocation — the arena-reuse
    /// path between simulation points.
    pub fn clear(&mut self) {
        // A drained queue (the normal end-of-run state) already has an
        // all-zero ring; only a run abandoned mid-flight pays the fill.
        if self.near_pending > 0 {
            self.near.fill(0);
            self.summary.fill(0);
            self.near_pending = 0;
        }
        self.min_hint = 0;
        self.drained = 0;
        self.far.clear();
        self.far_compacted = 0;
    }

    #[inline]
    fn idx(cycle: Cycle) -> usize {
        (cycle & (Self::HORIZON - 1)) as usize
    }

    /// Record that some component wakes at exactly `cycle`.
    #[inline]
    pub fn push(&mut self, cycle: Cycle) {
        debug_assert!(
            cycle > self.drained,
            "wake at {cycle} pushed at or before the drained front {}",
            self.drained
        );
        if cycle <= self.drained {
            // Already consumed by the invariant; keep release builds safe.
            return;
        }
        if cycle - self.drained <= Self::HORIZON {
            let i = Self::idx(cycle);
            if self.near[i] == 0 {
                self.summary[i >> 6] |= 1 << (i & 63);
            }
            self.near[i] += 1;
            if self.near_pending == 0 || cycle < self.min_hint {
                self.min_hint = cycle;
            }
            self.near_pending += 1;
        } else {
            // Duplicate far pushes can pile up faster than queries retire
            // them; dedup when the heap doubles since last compaction.
            if self.far.len() > 4096.max(self.far_compacted * 2) {
                let mut entries = std::mem::take(&mut self.far).into_vec();
                entries.sort_unstable();
                entries.dedup();
                self.far = entries.into();
                self.far_compacted = self.far.len();
            }
            self.far.push(Reverse(cycle));
        }
    }

    /// First cycle in `[from, until]` whose bucket is nonzero, walking
    /// the summary bitmap a word at a time. Both bounds must lie within
    /// the current ring window.
    fn next_occupied(&self, from: Cycle, until: Cycle) -> Option<Cycle> {
        if from > until {
            return None;
        }
        let mut c = from;
        let mut i = Self::idx(c);
        // First word: mask off bits below the starting bucket.
        let mut word = self.summary[i >> 6] & (!0u64 << (i & 63));
        loop {
            if word != 0 {
                let bit = word.trailing_zeros() as usize;
                let found_i = (i & !63) + bit;
                // Distance in index space equals distance in cycle space
                // within one window.
                let c_found = c + ((found_i.wrapping_sub(Self::idx(c))) as Cycle
                    & (Self::HORIZON - 1));
                return (c_found <= until).then_some(c_found);
            }
            // Advance to the next summary word (wrapping).
            let next_i = ((i & !63) + 64) & (Self::HORIZON as usize - 1);
            c += (next_i.wrapping_sub(i) as Cycle) & (Self::HORIZON - 1);
            if c > until {
                return None;
            }
            i = next_i;
            word = self.summary[i >> 6];
        }
    }

    /// Zero one bucket and maintain the summary/pending bookkeeping.
    fn consume_bucket(&mut self, cycle: Cycle) {
        let i = Self::idx(cycle);
        self.near_pending -= self.near[i] as u64;
        self.near[i] = 0;
        self.summary[i >> 6] &= !(1 << (i & 63));
    }

    /// Discard every ring entry at or before `now` and advance the
    /// drained front.
    fn advance(&mut self, now: Cycle) {
        if now <= self.drained {
            return;
        }
        if self.near_pending > 0 {
            if now >= self.drained + Self::HORIZON {
                // The jump clears the whole window: every entry is stale.
                self.near.fill(0);
                self.summary.fill(0);
                self.near_pending = 0;
            } else {
                let mut c = self.min_hint.max(self.drained + 1);
                while self.near_pending > 0 {
                    match self.next_occupied(c, now) {
                        Some(e) => {
                            self.consume_bucket(e);
                            c = e + 1;
                        }
                        None => break,
                    }
                }
                self.min_hint = self.min_hint.max(now + 1);
            }
        }
        self.drained = now;
    }

    /// The earliest recorded wake strictly after `now`, discarding stale
    /// (already-consumed) entries on the way. `None` means no component
    /// has any upcoming event — matching the linear scan's `None` as
    /// long as every scheduled wake was pushed.
    pub fn earliest_after(&mut self, now: Cycle) -> Option<Cycle> {
        self.advance(now);
        let ring = if self.near_pending > 0 {
            let found = self
                .next_occupied(self.min_hint, self.drained + Self::HORIZON)
                .expect("near_pending > 0 implies an occupied bucket in the window");
            self.min_hint = found;
            Some(found)
        } else {
            None
        };
        while let Some(&Reverse(c)) = self.far.peek() {
            if c > now {
                break;
            }
            self.far.pop();
        }
        let far = self.far.peek().map(|&Reverse(c)| c);
        match (ring, far) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }
}

/// A min-heap over per-source next-event cycles with lazy invalidation.
#[derive(Debug, Clone)]
pub struct NextEventHeap {
    /// `(cycle, source)` entries, possibly stale.
    heap: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// The last polled value per source; the truth entries are checked
    /// against.
    current: Vec<Option<Cycle>>,
    /// Which sources need re-polling before the next query.
    dirty: Vec<bool>,
    dirty_list: Vec<u32>,
}

impl Default for NextEventHeap {
    /// An empty heap over zero sources; [`NextEventHeap::reset`] re-sizes
    /// it for actual use.
    fn default() -> Self {
        NextEventHeap::new(0)
    }
}

impl NextEventHeap {
    /// A heap over `sources` components, all initially dirty (the first
    /// [`NextEventHeap::earliest`] polls everything once).
    pub fn new(sources: usize) -> Self {
        NextEventHeap {
            heap: BinaryHeap::with_capacity(sources + 1),
            current: vec![None; sources],
            dirty: vec![true; sources],
            dirty_list: (0..sources as u32).collect(),
        }
    }

    /// Reset to the all-dirty initial state over `sources` components,
    /// keeping allocations — the arena-reuse path between simulation
    /// points.
    pub fn reset(&mut self, sources: usize) {
        self.heap.clear();
        self.current.clear();
        self.current.resize(sources, None);
        self.dirty.clear();
        self.dirty.resize(sources, true);
        self.dirty_list.clear();
        self.dirty_list.extend(0..sources as u32);
    }

    /// Record that `source` may have a different next-event cycle than
    /// last polled. O(1); duplicate marks are absorbed.
    #[inline]
    pub fn mark_dirty(&mut self, source: usize) {
        if !self.dirty[source] {
            self.dirty[source] = true;
            self.dirty_list.push(source as u32);
        }
    }

    /// The earliest next-event cycle across all sources, re-polling only
    /// the dirty ones via `poll`. Equals
    /// `(0..sources).filter_map(poll).min()` — the old linear scan —
    /// whenever every mutated source was marked dirty.
    pub fn earliest(&mut self, mut poll: impl FnMut(u32) -> Option<Cycle>) -> Option<Cycle> {
        for s in self.dirty_list.drain(..) {
            self.dirty[s as usize] = false;
            let fresh = poll(s);
            if fresh != self.current[s as usize] {
                self.current[s as usize] = fresh;
                if let Some(c) = fresh {
                    self.heap.push(Reverse((c, s)));
                }
            }
        }
        // Entries for superseded values linger until they reach the top;
        // drop them here. Live entries always cover every `Some` in
        // `current`, so an empty heap is a true "no events anywhere".
        while let Some(&Reverse((c, s))) = self.heap.peek() {
            if self.current[s as usize] == Some(c) {
                return Some(c);
            }
            self.heap.pop();
        }
        // Rebuilding on bloat is unnecessary: the heap only grows by one
        // entry per *changed* source per query and stale entries are
        // popped above, so its size is bounded by live values plus
        // not-yet-surfaced stale ones.
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference reducer: the linear scan the heap must match.
    fn scan(values: &[Option<Cycle>]) -> Option<Cycle> {
        values.iter().flatten().min().copied()
    }

    #[test]
    fn matches_linear_scan_under_random_mutation() {
        // A deterministic xorshift walk over (source, new value)
        // mutations; after each batch the heap and the scan must agree.
        let n = 13usize;
        let mut values: Vec<Option<Cycle>> = vec![None; n];
        let mut heap = NextEventHeap::new(n);
        let mut x: u64 = 0x9e3779b97f4a7c15;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..2_000 {
            for _ in 0..(rng() % 4) {
                let s = (rng() % n as u64) as usize;
                values[s] = match rng() % 3 {
                    0 => None,
                    _ => Some(rng() % 1_000),
                };
                heap.mark_dirty(s);
            }
            assert_eq!(heap.earliest(|s| values[s as usize]), scan(&values));
        }
    }

    #[test]
    fn unmarked_sources_are_not_repolled() {
        let mut heap = NextEventHeap::new(3);
        let mut polls = vec![0u32; 3];
        let values = [Some(5), Some(2), None];
        let e = heap.earliest(|s| {
            polls[s as usize] += 1;
            values[s as usize]
        });
        assert_eq!(e, Some(2));
        assert_eq!(polls, vec![1, 1, 1], "first query polls everything");
        let e = heap.earliest(|s| {
            polls[s as usize] += 1;
            values[s as usize]
        });
        assert_eq!(e, Some(2));
        assert_eq!(polls, vec![1, 1, 1], "clean sources answer from cache");
        heap.mark_dirty(1);
        heap.mark_dirty(1); // duplicate marks collapse
        let e = heap.earliest(|s| {
            polls[s as usize] += 1;
            if s == 1 {
                None
            } else {
                values[s as usize]
            }
        });
        assert_eq!(e, Some(5), "source 1 went quiet; min moves to source 0");
        assert_eq!(polls, vec![1, 2, 1], "only the dirty source re-polled");
    }

    #[test]
    fn empty_heap_means_no_events() {
        let mut heap = NextEventHeap::new(2);
        assert_eq!(heap.earliest(|_| None), None);
        heap.mark_dirty(0);
        assert_eq!(heap.earliest(|s| if s == 0 { Some(9) } else { None }), Some(9));
        heap.mark_dirty(0);
        assert_eq!(heap.earliest(|_| None), None);
    }

    #[test]
    fn mode_default_is_push() {
        assert_eq!(NextEventMode::default(), NextEventMode::Push);
    }

    #[test]
    fn wake_queue_pops_stale_and_keeps_future() {
        let mut q = WakeQueue::new();
        q.push(5);
        q.push(12);
        q.push(9);
        assert_eq!(q.earliest_after(0), Some(5));
        // The cycle-5 event fires and is consumed; at now=5 its entry is
        // stale and must be skipped, not returned.
        assert_eq!(q.earliest_after(5), Some(9));
        assert_eq!(q.earliest_after(11), Some(12));
        assert_eq!(q.earliest_after(12), None);
        assert_eq!(q.earliest_after(100), None, "drained queue stays empty");
    }

    #[test]
    fn wake_queue_duplicates_are_harmless() {
        let mut q = WakeQueue::new();
        for _ in 0..10 {
            q.push(7);
        }
        q.push(3);
        assert_eq!(q.earliest_after(2), Some(3));
        assert_eq!(q.earliest_after(3), Some(7));
        assert_eq!(q.earliest_after(7), None);
    }

    #[test]
    fn wake_queue_entry_at_now_plus_one_is_live() {
        // An event scheduled for the very next cycle must be reported:
        // the tick loops jump only when `next > now + 1`, but the value
        // itself still participates in the min.
        let mut q = WakeQueue::new();
        q.push(43);
        assert_eq!(q.earliest_after(42), Some(43));
    }

    #[test]
    fn wake_queue_compaction_preserves_order() {
        let mut q = WakeQueue::new();
        // Flood with duplicates well past the compaction threshold, then
        // confirm the queue still reports the exact minimum.
        for i in 0..6_000u64 {
            q.push(1_000_000 + (i % 17));
        }
        q.push(999_999);
        assert_eq!(q.earliest_after(500_000), Some(999_999));
        assert_eq!(q.earliest_after(999_999), Some(1_000_000));
        assert_eq!(q.earliest_after(1_000_016), None);
    }

    #[test]
    fn wake_queue_ring_wraps_and_spills_to_far() {
        let mut q = WakeQueue::new();
        let h = WakeQueue::HORIZON;
        q.push(10); // within the ring
        q.push(h + 5); // beyond the horizon from a drained front of 0
        assert_eq!(q.earliest_after(9), Some(10));
        assert_eq!(q.earliest_after(10), Some(h + 5));
        // Push near the advanced front: these land on wrapped ring
        // indices and must still come out in cycle order.
        q.push(h + 6);
        q.push(2 * h);
        assert_eq!(q.earliest_after(h + 5), Some(h + 6));
        assert_eq!(q.earliest_after(h + 6), Some(2 * h));
        assert_eq!(q.earliest_after(2 * h), None);
    }

    #[test]
    fn wake_queue_clear_resets_for_reuse() {
        let mut q = WakeQueue::new();
        q.push(100);
        q.push(WakeQueue::HORIZON * 3);
        assert_eq!(q.earliest_after(50), Some(100));
        q.clear();
        assert_eq!(q.earliest_after(0), None, "cleared queue holds nothing");
        // Low cycles are valid again: the drained front reset too.
        q.push(5);
        assert_eq!(q.earliest_after(1), Some(5));
        assert_eq!(q.earliest_after(5), None);
    }

    #[test]
    fn wake_queue_matches_sorted_reference_under_random_traffic() {
        use std::collections::BTreeSet;
        let mut q = WakeQueue::new();
        let mut reference: BTreeSet<Cycle> = BTreeSet::new();
        let mut now: Cycle = 0;
        let mut x: u64 = 0x243f6a8885a308d3;
        let mut rng = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..20_000 {
            // A few pushes strictly above `now`, mixing DRAM-ish, fault
            // round-trip and beyond-horizon distances.
            for _ in 0..(rng() % 4) {
                let dist = match rng() % 4 {
                    0 => 1 + rng() % 16,
                    1 => 1 + rng() % 1_000,
                    2 => 1 + rng() % (WakeQueue::HORIZON - 1),
                    _ => 1 + rng() % (3 * WakeQueue::HORIZON),
                };
                q.push(now + dist);
                reference.insert(now + dist);
            }
            // Advance: usually small steps, sometimes a jump clean past
            // the horizon (a long idle window).
            now += match rng() % 8 {
                0 => WakeQueue::HORIZON + rng() % WakeQueue::HORIZON,
                1..=2 => 1 + rng() % 5_000,
                _ => 1 + rng() % 64,
            };
            let expect = reference.range(now + 1..).next().copied();
            assert_eq!(q.earliest_after(now), expect, "diverged at now={now}");
            reference = reference.split_off(&(now + 1));
        }
    }

    #[test]
    fn next_event_heap_reset_reuses_like_new() {
        let mut heap = NextEventHeap::new(2);
        heap.mark_dirty(0);
        assert_eq!(heap.earliest(|s| (s == 0).then_some(4)), Some(4));
        heap.reset(3);
        // All three sources are polled again, exactly like a fresh heap.
        let mut polls = vec![0u32; 3];
        let e = heap.earliest(|s| {
            polls[s as usize] += 1;
            Some(10 + s as Cycle)
        });
        assert_eq!(e, Some(10));
        assert_eq!(polls, vec![1, 1, 1]);
    }
}
