//! End-to-end tests of the whole-GPU simulator: demand paging, block
//! switching on fault (use case 1) and GPU-local fault handling (use
//! case 2).

use gex_isa::asm::Asm;
use gex_isa::func::FuncSim;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{CmpKind, CmpType};
use gex_isa::reg::{Pred, Reg};
use gex_isa::trace::KernelTrace;
use gex_sim::{
    BlockSwitchConfig, Gpu, GpuConfig, GpuRunReport, Interconnect, LocalFaultConfig, PagingMode,
    Residency,
};
use gex_sm::Scheme;

const IN: u64 = 0x100_0000; // input buffer
const OUT: u64 = 0x800_0000; // output buffer

/// Each block streams its own 64 KB input region, computes on it, and
/// stores to its output region — one migration fault per block, then
/// plenty of compute to overlap with.
fn region_compute_kernel(blocks: u32, compute_iters: u32) -> (KernelTrace, Residency) {
    region_compute_kernel_shared(blocks, compute_iters, 0)
}

/// Like [`region_compute_kernel`] with a declared shared-memory footprint
/// to throttle occupancy (the oversubscribed, low-occupancy shape where
/// block switching pays off).
fn region_compute_kernel_shared(
    blocks: u32,
    compute_iters: u32,
    shared: u32,
) -> (KernelTrace, Residency) {
    let mut a = Asm::new();
    let (tid, bid, addr, v, acc, i, p) =
        (Reg(0), Reg(1), Reg(2), Reg(3), Reg(4), Reg(5), Pred(0));
    a.flat_tid(tid);
    a.flat_ctaid(bid);
    // addr = IN + bid * 64KB + tid * 4
    a.mul(addr, bid, 0x1_0000u64);
    a.add(addr, addr, IN);
    a.shl_imm(v, tid, 2);
    a.add(addr, addr, v);
    a.ld_global_u32(acc, addr, 0);
    // compute loop
    a.mov(i, 0u64);
    a.label("loop");
    a.mad(acc, acc, 5u64, 3u64);
    a.add(i, i, 1u64);
    a.setp(p, CmpKind::Lt, CmpType::U64, i, compute_iters as u64);
    a.bra_if("loop", p, true);
    // store to OUT + bid*64KB + tid*4
    a.mul(v, bid, 0x1_0000u64);
    a.add(v, v, OUT);
    a.shl_imm(i, tid, 2);
    a.add(v, v, i);
    a.st_global_u32(v, acc, 0);
    a.exit();
    let k = KernelBuilder::new("region_compute", a.assemble().unwrap())
        .grid(Dim3::x(blocks))
        .block(Dim3::x(128))
        .regs_per_thread(32)
        .shared_bytes(shared)
        .build()
        .unwrap();
    let mut img = MemImage::new();
    for b in 0..blocks as u64 {
        for t in 0..128u64 {
            img.write_u32(IN + b * 0x1_0000 + t * 4, (b * 1000 + t) as u32);
        }
    }
    let trace = FuncSim::new().run(&k, &mut img).unwrap().trace;
    let res = Residency::new()
        .cpu_dirty(IN, blocks as u64 * 0x1_0000)
        .resident(OUT, blocks as u64 * 0x1_0000);
    (trace, res)
}

/// Every thread stores into a huge unbacked buffer with a block-strided
/// pattern: a first-touch fault storm (use case 2's shape).
fn first_touch_storm_kernel(blocks: u32) -> (KernelTrace, Residency) {
    let mut a = Asm::new();
    let (tid, bid, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
    a.flat_tid(tid);
    a.flat_ctaid(bid);
    a.mul(addr, bid, 0x1_0000u64);
    a.add(addr, addr, OUT);
    a.shl_imm(v, tid, 2);
    a.add(addr, addr, v);
    a.mov(v, 7u64);
    a.st_global_u32(addr, v, 0);
    a.ld_global_u32(v, addr, 0);
    a.st_global_u32(addr, v, 4096); // second page of the region
    a.exit();
    let k = KernelBuilder::new("first_touch", a.assemble().unwrap())
        .grid(Dim3::x(blocks))
        .block(Dim3::x(128))
        .regs_per_thread(16)
        .build()
        .unwrap();
    let mut img = MemImage::new();
    let trace = FuncSim::new().run(&k, &mut img).unwrap().trace;
    let res = Residency::new().lazy(OUT, blocks as u64 * 0x1_0000);
    (trace, res)
}

/// Compute-dense blocks with one migration fault mid-execution: the shape
/// where block switching pays off (paper: sgemm/stencil/histo, Section
/// 5.3). Single-warp blocks, occupancy 2 per SM via shared memory.
fn phase_kernel(blocks: u32, iters: u64) -> (KernelTrace, Residency) {
    fn compute_loop(a: &mut Asm, label: &str, iters: u64) {
        let (acc, i, p) = (Reg(4), Reg(5), Pred(0));
        a.mov(i, 0u64);
        a.label(label);
        for _ in 0..8 {
            a.frsqrt(acc, acc);
        }
        a.add(i, i, 1u64);
        a.setp(p, CmpKind::Lt, CmpType::U64, i, iters);
        a.bra_if(label, p, true);
    }
    let mut a = Asm::new();
    let (tid, bid, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
    a.flat_tid(tid);
    a.flat_ctaid(bid);
    a.mov_f32(Reg(4), 1.5);
    compute_loop(&mut a, "p1", iters);
    a.mul(addr, bid, 0x1_0000u64);
    a.add(addr, addr, IN);
    a.shl_imm(v, tid, 2);
    a.add(addr, addr, v);
    a.ld_global_u32(Reg(6), addr, 0);
    compute_loop(&mut a, "p2", iters);
    a.mul(v, bid, 0x1_0000u64);
    a.add(v, v, OUT);
    a.shl_imm(Reg(7), tid, 2);
    a.add(v, v, Reg(7));
    a.st_global_u32(v, Reg(6), 0);
    a.exit();
    let k = KernelBuilder::new("phase", a.assemble().unwrap())
        .grid(Dim3::x(blocks))
        .block(Dim3::x(32))
        .regs_per_thread(32)
        .shared_bytes(16 * 1024)
        .build()
        .unwrap();
    let mut img = MemImage::new();
    for b in 0..blocks as u64 {
        for t in 0..32u64 {
            img.write_u32(IN + b * 0x1_0000 + t * 4, 1);
        }
    }
    let trace = FuncSim::new().run(&k, &mut img).unwrap().trace;
    let res = Residency::new()
        .cpu_dirty(IN, blocks as u64 * 0x1_0000)
        .resident(OUT, blocks as u64 * 0x1_0000);
    (trace, res)
}

fn gpu(scheme: Scheme, paging: PagingMode, sms: u32) -> Gpu {
    Gpu::new(GpuConfig::kepler_k20().with_sms(sms), scheme, paging).max_cycles(500_000_000)
}

fn assert_complete(r: &GpuRunReport, t: &KernelTrace) {
    assert_eq!(r.sm.committed, t.dyn_instrs(), "every instruction commits exactly once");
    assert_eq!(r.blocks, t.blocks.len() as u64);
}

#[test]
fn all_resident_runs_to_completion_on_16_sms() {
    let (t, res) = region_compute_kernel(64, 8);
    let r = gpu(Scheme::ReplayQueue, PagingMode::AllResident, 16).run(&t, &res);
    assert_complete(&r, &t);
    assert_eq!(r.sm.faults, 0);
    assert_eq!(r.cpu.resolved(), 0);
}

#[test]
fn demand_paging_migrates_and_costs_time() {
    let (t, res) = region_compute_kernel(32, 8);
    let resident = gpu(Scheme::ReplayQueue, PagingMode::AllResident, 16).run(&t, &res);
    let demand = gpu(
        Scheme::ReplayQueue,
        PagingMode::demand(Interconnect::nvlink()),
        16,
    )
    .run(&t, &res);
    assert_complete(&demand, &t);
    assert_eq!(demand.cpu.migrations, 32, "one 64 KB migration per block");
    assert!(
        demand.cycles > resident.cycles + 10_000,
        "migrations must cost time: {} vs {}",
        demand.cycles,
        resident.cycles
    );
}

#[test]
fn stall_on_fault_baseline_supports_demand_paging() {
    // The baseline scheme handles faults as very long TLB misses; execution
    // must still complete with identical work.
    let (t, res) = region_compute_kernel(8, 8);
    let r = gpu(Scheme::Baseline, PagingMode::demand(Interconnect::nvlink()), 4).run(&t, &res);
    assert_complete(&r, &t);
    assert_eq!(r.cpu.migrations, 8);
    assert_eq!(r.sm.faults, 0, "stall mode never notifies the SM");
}

#[test]
fn pcie_migrations_cost_more_than_nvlink() {
    let (t, res) = region_compute_kernel(32, 8);
    let nv = gpu(Scheme::ReplayQueue, PagingMode::demand(Interconnect::nvlink()), 16)
        .run(&t, &res);
    let pcie =
        gpu(Scheme::ReplayQueue, PagingMode::demand(Interconnect::pcie()), 16).run(&t, &res);
    assert!(pcie.cycles > nv.cycles, "PCIe {} vs NVLink {}", pcie.cycles, nv.cycles);
}

#[test]
fn block_switching_hides_migration_latency() {
    // 4 SMs x 2-block occupancy hold 8 blocks, 4 stay pending; each block
    // faults once mid-execution, so the local scheduler can run another
    // block's compute during the migration.
    let (t, res) = phase_kernel(12, 850);
    let ic = Interconnect::nvlink();
    let plain = gpu(Scheme::ReplayQueue, PagingMode::demand(ic), 4).run(&t, &res);
    let switching = gpu(
        Scheme::ReplayQueue,
        PagingMode::Demand {
            interconnect: ic,
            block_switch: Some(BlockSwitchConfig::default()),
            local_handling: None,
        },
        4,
    )
    .run(&t, &res);
    assert_complete(&switching, &t);
    assert!(switching.switches > 0, "the local scheduler must act");
    assert!(
        (switching.cycles as f64) < plain.cycles as f64 * 0.95,
        "switching should hide migration latency: {} vs {}",
        switching.cycles,
        plain.cycles
    );
}

#[test]
fn ideal_switching_completes_with_reordering_effects() {
    let (t, res) = phase_kernel(12, 850);
    let ic = Interconnect::pcie();
    let normal = gpu(
        Scheme::ReplayQueue,
        PagingMode::Demand {
            interconnect: ic,
            block_switch: Some(BlockSwitchConfig::default()),
            local_handling: None,
        },
        4,
    )
    .run(&t, &res);
    let ideal = gpu(
        Scheme::ReplayQueue,
        PagingMode::Demand {
            interconnect: ic,
            block_switch: Some(BlockSwitchConfig::ideal()),
            local_handling: None,
        },
        4,
    )
    .run(&t, &res);
    assert_complete(&ideal, &t);
    assert!(ideal.switches > 0);
    // Ideal (1-cycle) context switching removes the transfer cost but also
    // perturbs the block-to-slot ordering; the paper observes it can even
    // lose to normal switching through tail effects (mri-gridding, Section
    // 5.3). Require it to stay within a sane band of the normal variant.
    let ratio = ideal.cycles as f64 / normal.cycles as f64;
    assert!(
        (0.5..=1.5).contains(&ratio),
        "ideal {} vs normal {} (ratio {ratio:.2})",
        ideal.cycles,
        normal.cycles
    );
}

#[test]
fn local_handling_beats_cpu_on_first_touch_storms() {
    let (t, res) = first_touch_storm_kernel(128);
    let ic = Interconnect::pcie();
    let cpu_handled = gpu(Scheme::ReplayQueue, PagingMode::demand(ic), 16).run(&t, &res);
    let local = gpu(
        Scheme::ReplayQueue,
        PagingMode::Demand {
            interconnect: ic,
            block_switch: None,
            local_handling: Some(LocalFaultConfig::default()),
        },
        16,
    )
    .run(&t, &res);
    assert_complete(&local, &t);
    assert!(local.local.resolved > 0, "local handler must resolve faults");
    assert_eq!(local.cpu.resolved(), 0, "no CPU involvement for first-touch faults");
    assert!(
        local.cycles < cpu_handled.cycles,
        "local handling should win under a fault storm: {} vs {}",
        local.cycles,
        cpu_handled.cycles
    );
    assert!(local.local.peak_concurrency > 1, "handlers must overlap");
}

#[test]
fn more_sms_increase_cpu_handler_contention() {
    // Section 5.5: more SMs -> more concurrent faults -> more contention at
    // the serialized CPU handler. Mean fault latency should grow.
    let (t4, res4) = first_touch_storm_kernel(64);
    let small = gpu(Scheme::ReplayQueue, PagingMode::demand(Interconnect::nvlink()), 4)
        .run(&t4, &res4);
    let big = gpu(Scheme::ReplayQueue, PagingMode::demand(Interconnect::nvlink()), 16)
        .run(&t4, &res4);
    assert!(
        big.cpu.mean_latency() >= small.cpu.mean_latency(),
        "fault latency should not shrink with more concurrent faulters: {} vs {}",
        big.cpu.mean_latency(),
        small.cpu.mean_latency()
    );
}

#[test]
fn reports_are_consistent() {
    let (t, res) = region_compute_kernel(16, 8);
    let r = gpu(Scheme::operand_log_kib(16), PagingMode::demand(Interconnect::nvlink()), 8)
        .run(&t, &res);
    assert_complete(&r, &t);
    assert!(r.ipc() > 0.0);
    assert_eq!(r.kernel, "region_compute");
    // Faults notified to SMs equal squashes, and every region the CPU
    // resolved was a real region of the input.
    assert_eq!(r.sm.faults, r.sm.squashed);
    assert!(r.cpu.resolved() <= 16 + r.local.resolved);
}

#[test]
fn oversubscribed_memory_swaps_and_completes() {
    // Working set of 12 input regions + 12 output regions, but GPU memory
    // that only holds 8 regions: the handler must evict (swap) and the
    // run must still commit everything.
    let (t, res) = region_compute_kernel(12, 32);
    let mut cfg = GpuConfig::kepler_k20().with_sms(4);
    cfg.mem.gpu_mem_bytes = 8 * 64 * 1024;
    let r = Gpu::new(cfg, Scheme::ReplayQueue, PagingMode::demand(Interconnect::nvlink()))
        .max_cycles(500_000_000)
        .run(&t, &res);
    assert_complete(&r, &t);
    assert!(r.cpu.evictions > 0, "swapping must occur");
    // Evicted-then-retouched regions re-fault: more migrations than the
    // 12 initial input regions.
    assert!(
        r.cpu.migrations >= 12,
        "migrations {} should cover at least the input set",
        r.cpu.migrations
    );

    // The same run with ample memory is faster and never evicts.
    let ample = Gpu::new(
        GpuConfig::kepler_k20().with_sms(4),
        Scheme::ReplayQueue,
        PagingMode::demand(Interconnect::nvlink()),
    )
    .run(&t, &res);
    assert_eq!(ample.cpu.evictions, 0);
    assert!(ample.cycles <= r.cycles);
}
