//! Tests for the arithmetic-exception extension (Sections 3.1/3.2: the
//! preemptible schemes apply to exceptions like divide-by-zero too).

use gex_isa::asm::Asm;
use gex_isa::func::FuncSim;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::reg::Reg;
use gex_isa::trace::KernelTrace;
use gex_sm::{Scheme, SingleSmHarness};

/// Every thread divides by (tid % 2): half the lanes divide by zero, so
/// every div instruction traps on some lane.
fn div_kernel(divide_by_zero: bool) -> KernelTrace {
    let mut a = Asm::new();
    let (i, d, q) = (Reg(0), Reg(1), Reg(2));
    a.gtid(i);
    if divide_by_zero {
        a.and(d, i, 1u64);
    } else {
        a.mov(d, 2u64);
    }
    for _ in 0..4 {
        a.div(q, i, d);
        a.add(i, i, 1u64);
    }
    a.mov(d, 0x10_0000u64);
    a.st_global_u64(d, q, 0);
    a.exit();
    let k = KernelBuilder::new("div", a.assemble().unwrap())
        .grid(Dim3::x(2))
        .block(Dim3::x(64))
        .build()
        .unwrap();
    let mut img = MemImage::new();
    let run = FuncSim::new().run(&k, &mut img).unwrap();
    if divide_by_zero {
        assert!(run.stats.arithmetic_exceptions > 0, "functional sim must flag the traps");
    } else {
        assert_eq!(run.stats.arithmetic_exceptions, 0);
    }
    run.trace
}

#[test]
fn traps_squash_and_replay_under_preemptible_schemes() {
    let t = div_kernel(true);
    for scheme in [Scheme::WdCommit, Scheme::ReplayQueue, Scheme::operand_log_kib(16)] {
        let run = SingleSmHarness::new(scheme).run(&t);
        assert_eq!(run.sm_stats.committed, t.dyn_instrs(), "{scheme}");
        assert!(run.sm_stats.traps > 0, "{scheme}: traps must be taken");
        assert!(
            run.sm_stats.issued > run.sm_stats.committed,
            "{scheme}: trapped instructions replay"
        );
    }
}

#[test]
fn traps_cost_handler_time() {
    let clean = div_kernel(false);
    let trapping = div_kernel(true);
    let fast = SingleSmHarness::new(Scheme::ReplayQueue).run(&clean);
    let slow = SingleSmHarness::new(Scheme::ReplayQueue).run(&trapping);
    // 4 traps per warp x 500-cycle handler, partially overlapped.
    assert!(
        slow.cycles > fast.cycles + 500,
        "handler latency must show: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}

#[test]
fn baseline_reports_but_does_not_preempt() {
    // The stall-on-fault baseline cannot preempt: the trapping instruction
    // commits (current GPUs would terminate the process; Section 2.2).
    let t = div_kernel(true);
    let run = SingleSmHarness::new(Scheme::Baseline).run(&t);
    assert_eq!(run.sm_stats.committed, t.dyn_instrs());
    assert_eq!(run.sm_stats.traps, 0, "baseline takes no preemptible traps");
    assert_eq!(run.sm_stats.issued, run.sm_stats.committed);
}

#[test]
fn trapped_warp_survives_a_context_switch() {
    use gex_isa::trace::KernelTrace;
    use gex_mem::system::{FaultMode, MemSystem};
    use gex_mem::{MemConfig, PageState};
    use gex_sm::sm::KernelSetup;
    use gex_sm::{Sm, SmConfig, WarpState};
    use std::sync::Arc;

    let t: KernelTrace = div_kernel(true);
    let mut mem = MemSystem::new(MemConfig::kepler_k20().with_sms(1), FaultMode::SquashNotify);
    for &page in t.touched_pages() {
        mem.page_table.set_range(page, 1, PageState::Present);
    }
    let cfg = SmConfig::kepler_k20();
    let mut sm = Sm::new(0, cfg.clone(), gex_sm::Scheme::ReplayQueue);
    sm.configure_kernel(KernelSetup {
        warps_per_block: t.warps_per_block,
        regs_per_thread: t.regs_per_thread,
        shared_bytes: t.shared_bytes,
        occupancy_blocks: 4,
    });
    let slot = sm.assign_block(Arc::new(t.blocks[0].clone()));
    // Run until some warp traps, then switch the block out mid-handler.
    let mut now = 0u64;
    while sm.stats().traps == 0 {
        mem.tick(now);
        sm.tick(now, &mut mem);
        now += 1;
        assert!(now < 100_000, "no trap ever fired");
    }
    sm.begin_drain(slot);
    while !sm.drained(slot) {
        mem.tick(now);
        sm.tick(now, &mut mem);
        now += 1;
        assert!(now < 200_000, "drain hung");
    }
    let saved = sm.take_block(slot);
    now += 1000; // off-chip dead time (longer than the handler)
    sm.restore_block(saved);
    while !sm.is_empty() {
        mem.tick(now);
        sm.tick(now, &mut mem);
        now += 1;
        assert!(now < 1_000_000, "restored block hung");
    }
    let stats = sm.stats();
    assert_eq!(stats.committed, t.blocks[0].dyn_instrs());
    assert!(stats.traps > 0);
    // No warp may be left in the Trapped state machinery after completion.
    let _ = WarpState::Trapped;
}
