//! Property tests over the exception schemes: for arbitrary programs, all
//! five pipeline designs retire exactly the same instructions, and the
//! performance ordering the paper establishes holds.

use gex_isa::asm::Asm;
use gex_isa::func::FuncSim;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::reg::Reg;
use gex_isa::trace::KernelTrace;
use gex_sm::{Scheme, SingleSmHarness};
use gex_testkit::prelude::*;

const BUF: u64 = 0x10_0000;
const BUF_LEN: u64 = 1 << 16;

/// Simplified random instruction set biased toward the patterns that
/// stress the schemes: loads/stores with recycled address registers and
/// dependent ALU chains.
#[derive(Debug, Clone)]
enum Op {
    Chain(u8),
    LoadBump(u8, u32),
    StoreBump(u8, u32),
    SharedPingPong,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u8..6).prop_map(Op::Chain),
        (1u8..6, 0u32..1024).prop_map(|(d, s)| Op::LoadBump(d, s * 4)),
        (1u8..6, 0u32..1024).prop_map(|(v, s)| Op::StoreBump(v, s * 4)),
        Just(Op::SharedPingPong),
    ]
}

fn build_trace(ops: &[Op], warps: u32) -> KernelTrace {
    let mut a = Asm::new();
    let addr = Reg(8);
    a.gtid(Reg(0));
    a.shl_imm(addr, Reg(0), 2);
    a.add(addr, addr, BUF);
    for op in ops {
        match *op {
            Op::Chain(d) => {
                a.mad(Reg(d), Reg(d), 3u64, 1u64);
                a.mad(Reg(d), Reg(d), 5u64, 2u64);
            }
            Op::LoadBump(d, stride) => {
                // Figure-3 pattern: load through addr, then overwrite addr.
                a.ld_global_u32(Reg(d), addr, 0);
                a.add(addr, addr, stride as u64);
                a.and(addr, addr, BUF_LEN - 4);
                a.add(addr, addr, BUF);
            }
            Op::StoreBump(v, stride) => {
                a.st_global_u32(addr, Reg(v), 0);
                a.add(addr, addr, stride as u64);
                a.and(addr, addr, BUF_LEN - 4);
                a.add(addr, addr, BUF);
            }
            Op::SharedPingPong => {
                a.flat_tid(Reg(7));
                a.shl_imm(Reg(7), Reg(7), 2);
                a.st_shared_u32(Reg(7), Reg(1), 0);
                a.bar();
                a.ld_shared_u32(Reg(2), Reg(7), 0);
            }
        }
    }
    a.exit();
    let k = KernelBuilder::new("prop", a.assemble().expect("assembles"))
        .grid(Dim3::x(2))
        .block(Dim3::x(warps * 32))
        .regs_per_thread(16)
        .shared_bytes(warps * 32 * 4)
        .build()
        .expect("kernel");
    let mut mem = MemImage::new();
    for j in 0..BUF_LEN / 4 {
        mem.write_u32(BUF + j * 4, j as u32);
    }
    FuncSim::new().run(&k, &mut mem).expect("functional run").trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// All five schemes retire exactly the trace's instructions, once each
    /// (no lost or double commits under any constraint set).
    #[test]
    fn schemes_commit_identical_work(
        ops in gex_testkit::collection::vec(op_strategy(), 1..10),
        warps in 1u32..4,
    ) {
        let t = build_trace(&ops, warps);
        for scheme in Scheme::all() {
            let run = SingleSmHarness::new(scheme).max_cycles(20_000_000).run(&t);
            prop_assert_eq!(run.sm_stats.committed, t.dyn_instrs(), "{}", scheme);
            prop_assert_eq!(run.sm_stats.issued, run.sm_stats.committed,
                "no replays without faults under {}", scheme);
        }
    }

    /// The paper's constraint ordering: baseline <= operand log <= replay
    /// queue <= wd-lastcheck <= wd-commit in cycles. The constraints are
    /// not strict formal subsets (a scheme that delays one warp can
    /// accidentally improve another's scheduling), so a few cycles of
    /// dual-issue noise are tolerated.
    #[test]
    fn performance_ordering_is_total(
        ops in gex_testkit::collection::vec(op_strategy(), 1..10),
        warps in 1u32..4,
    ) {
        let t = build_trace(&ops, warps);
        let cycles = |s: Scheme| SingleSmHarness::new(s).max_cycles(20_000_000).run(&t).cycles;
        let base = cycles(Scheme::Baseline);
        let ol = cycles(Scheme::operand_log_kib(32));
        let rq = cycles(Scheme::ReplayQueue);
        let wdl = cycles(Scheme::WdLastCheck);
        let wdc = cycles(Scheme::WdCommit);
        let slack = |c: u64| c + 8 + c / 100;
        prop_assert!(base <= slack(ol), "baseline {base} > operand log {ol}");
        prop_assert!(ol <= slack(rq), "operand log {ol} > replay queue {rq}");
        prop_assert!(rq <= slack(wdl), "replay queue {rq} > wd-lastcheck {wdl}");
        prop_assert!(wdl <= slack(wdc), "wd-lastcheck {wdl} > wd-commit {wdc}");
    }
}
