//! `gex-campaign` — CLI client for the `gex-served` campaign daemon.
//!
//! ```text
//! gex-campaign ADDR submit TENANT NAME --workloads a,b --schemes S,S \
//!     [--preset test|bench|paper] [--sms N] [--weight N] [--seed N] \
//!     [--inject panic|deadline] [--partition shared|static|quarantine] \
//!     [--watch]
//! gex-campaign ADDR status  TENANT NAME
//! gex-campaign ADDR results TENANT NAME
//! gex-campaign ADDR watch   TENANT NAME
//! gex-campaign ADDR cancel  TENANT NAME
//! gex-campaign ADDR ping
//! gex-campaign ADDR shutdown
//! ```
//!
//! Scheme tokens: `Baseline`, `WdCommit`, `WdLastCheck`, `ReplayQueue`,
//! `OperandLog:<bytes>`. Exit status: 0 on success (including a campaign
//! that finishes `done`), 1 on a quarantined/cancelled campaign when
//! watching, 2 on usage or server rejection.
//!
//! The client retries connections with exponential backoff, so pointing
//! it at a daemon that is still starting (or restarting after a crash)
//! simply waits instead of failing.

use gex::workloads::Preset;
use gex_serve::wire::{parse_scheme, state, Inject};
use gex_serve::{CampaignSpec, Client, ClientConfig, Event, PointResult};

fn usage() -> ! {
    eprintln!(
        "usage: gex-campaign ADDR submit TENANT NAME --workloads a,b --schemes S,S\n\
         \x20          [--preset test|bench|paper] [--sms N] [--weight N] [--seed N]\n\
         \x20          [--inject panic|deadline] [--partition shared|static|quarantine]\n\
         \x20          [--watch]\n\
         \x20      gex-campaign ADDR status|results|watch|cancel TENANT NAME\n\
         \x20      gex-campaign ADDR ping|shutdown"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("gex-campaign: {msg}");
    std::process::exit(2);
}

fn print_point(p: &PointResult) {
    match p {
        PointResult::Done { key, cycles } => println!("  {key:<40} {cycles} cycles"),
        PointResult::Quarantined { key, kind, error } => {
            println!("  {key:<40} QUARANTINED [{kind}] {error}")
        }
        PointResult::Cancelled { key } => println!("  {key:<40} cancelled"),
        PointResult::Pending { key } => println!("  {key:<40} pending"),
    }
}

fn watch_to_end(client: &mut Client, tenant: &str, name: &str) -> ! {
    let terminal = client
        .watch(tenant, name, |e| match e {
            Event::Point { key, cycles } => println!("  {key:<40} {cycles} cycles"),
            Event::Quarantine { key, kind, error } => {
                println!("  {key:<40} QUARANTINED [{kind}] {error}")
            }
            Event::State { state } => println!("campaign is {state}"),
        })
        .unwrap_or_else(|e| fail(e));
    std::process::exit(if terminal == state::DONE { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 {
        usage();
    }
    let addr = &args[0];
    let op = args[1].as_str();
    let mut client =
        Client::connect(addr, ClientConfig::default()).unwrap_or_else(|e| fail(e));

    match op {
        "ping" => {
            client.ping().unwrap_or_else(|e| fail(e));
            println!("{addr} is alive");
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(e));
            println!("{addr} asked to stop");
        }
        "status" | "results" | "watch" | "cancel" => {
            if args.len() != 4 {
                usage();
            }
            let (tenant, name) = (&args[2], &args[3]);
            match op {
                "status" => {
                    let s = client.status(tenant, name).unwrap_or_else(|e| fail(e));
                    println!(
                        "{} is {}: {}/{} done, {} quarantined, {} cancelled, {} resumed",
                        s.id, s.state, s.done, s.points, s.quarantined, s.cancelled, s.resumed
                    );
                }
                "results" => {
                    let (s, points) = client.results(tenant, name).unwrap_or_else(|e| fail(e));
                    println!("{} is {}:", s.id, s.state);
                    for p in &points {
                        print_point(p);
                    }
                }
                "watch" => watch_to_end(&mut client, tenant, name),
                "cancel" => {
                    let s = client.cancel(tenant, name).unwrap_or_else(|e| fail(e));
                    println!("{} is {}", s.id, s.state);
                }
                _ => unreachable!(),
            }
        }
        "submit" => {
            if args.len() < 4 {
                usage();
            }
            let (tenant, name) = (&args[2], &args[3]);
            let mut spec = CampaignSpec::new(Preset::Test, 2, Vec::new(), Vec::new());
            let mut watch = false;
            let mut it = args[4..].iter();
            while let Some(flag) = it.next() {
                let mut value = |what: &str| -> &String {
                    it.next().unwrap_or_else(|| fail(format!("{flag} needs {what}")))
                };
                match flag.as_str() {
                    "--workloads" => {
                        spec.workloads =
                            value("names").split(',').map(str::to_string).collect()
                    }
                    "--schemes" => {
                        spec.schemes = value("tokens")
                            .split(',')
                            .map(|t| parse_scheme(t).unwrap_or_else(|e| fail(e)))
                            .collect()
                    }
                    "--preset" => {
                        spec.preset = match value("a preset").as_str() {
                            "test" => Preset::Test,
                            "bench" => Preset::Bench,
                            "paper" => Preset::Paper,
                            other => fail(format!("unknown preset {other:?}")),
                        }
                    }
                    "--sms" => {
                        spec.sms = value("a count").parse().unwrap_or_else(|e| fail(e))
                    }
                    "--weight" => {
                        spec.weight = value("a weight").parse().unwrap_or_else(|e| fail(e))
                    }
                    "--seed" => {
                        spec.seed = Some(value("a seed").parse().unwrap_or_else(|e| fail(e)))
                    }
                    "--inject" => {
                        spec.inject = Some(match value("a mode").as_str() {
                            "panic" => Inject::Panic,
                            "deadline" => Inject::Deadline,
                            other => fail(format!("unknown inject mode {other:?}")),
                        })
                    }
                    "--partition" => {
                        let v = value("a policy");
                        spec.partition = Some(
                            gex::PartitionPolicy::parse(v).unwrap_or_else(|| {
                                fail(format!(
                                    "unknown partition policy {v:?} (shared|static|quarantine)"
                                ))
                            }),
                        )
                    }
                    "--watch" => watch = true,
                    other => fail(format!("unknown flag {other}")),
                }
            }
            if spec.workloads.is_empty() || spec.schemes.is_empty() {
                fail("submit needs --workloads and --schemes");
            }
            let s = client.submit(tenant, name, &spec).unwrap_or_else(|e| fail(e));
            println!(
                "{} admitted as {}: {} points ({} already journaled)",
                s.id, s.state, s.points, s.resumed
            );
            if watch {
                watch_to_end(&mut client, tenant, name);
            }
        }
        _ => usage(),
    }
}
