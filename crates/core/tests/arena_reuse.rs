//! Arena-reuse determinism through the persistent worker pool.
//!
//! The sweep engine's workers keep a per-thread simulation arena (SMs,
//! event wheels, wake queues, dispatch queues) that is recycled between
//! points. The contract: running the *same point list twice* through the
//! persistent pool — the first pass on cold arenas, the second on arenas
//! warmed by the first, with the scheduling order shuffled — yields
//! byte-identical [`GpuRunReport`]s, and identical figure renders. The
//! result cache is disabled throughout so every pass actually simulates
//! (cached replies would trivially match without exercising the arenas).

use gex::workloads::{suite, Preset};
use gex::{cache, Gpu, GpuConfig, GpuRunReport, Interconnect, PagingMode, Scheme};
use gex_testkit::prelude::*;
use std::sync::Mutex;

/// Serializes tests that flip process-global knobs (thread override,
/// cache enable, arena enable).
static GLOBALS_LOCK: Mutex<()> = Mutex::new(());

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    gex::exec::set_threads(n);
    let out = f();
    gex::exec::set_threads(0);
    out
}

/// Restores the cache on drop so a failing assert can't poison later
/// tests in this binary.
struct CacheOff;
impl CacheOff {
    fn new() -> Self {
        cache::set_enabled(false);
        CacheOff
    }
}
impl Drop for CacheOff {
    fn drop(&mut self) {
        cache::set_enabled(true);
    }
}

/// Deterministic Fisher-Yates permutation of `0..n` from an xorshift
/// stream — scheduling-order shuffle without a rand dependency.
fn permutation(n: usize, mut seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        idx.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    idx
}

fn run_point(wi: usize, scheme: Scheme, sms: u32, arena: bool) -> GpuRunReport {
    let ws = suite::parboil(Preset::Test);
    Gpu::new(
        GpuConfig::kepler_k20().with_sms(sms),
        scheme,
        PagingMode::demand(Interconnect::nvlink()),
    )
    .arena(arena)
    .run(&ws[wi].trace, &ws[wi].demand_residency())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Same point list, twice through the pool: cold arenas, then warmed
    /// arenas under a shuffled scheduling order, both equal to fresh
    /// (arena-disabled) serial runs.
    #[test]
    fn pool_reuse_with_shuffled_order_is_byte_identical(
        sms in prop_oneof![Just(1u32), Just(2), Just(4)],
        shuffle_seed in 1u64..10_000,
    ) {
        let _g = GLOBALS_LOCK.lock().unwrap();
        let _cache_off = CacheOff::new();
        let jobs: Vec<(usize, Scheme)> = (0..3usize)
            .flat_map(|i| [(i, Scheme::Baseline), (i, Scheme::ReplayQueue)])
            .collect();
        // Reference: fresh state per run, no pool, no arena.
        let fresh: Vec<GpuRunReport> =
            jobs.iter().map(|&(wi, s)| run_point(wi, s, sms, false)).collect();
        // Pass 1: cold worker arenas, natural order.
        let cold = with_threads(4, || {
            gex::exec::par_map(jobs.clone(), |(wi, s)| run_point(wi, s, sms, true))
        });
        // Pass 2: arenas warmed by pass 1, scheduling order shuffled.
        let perm = permutation(jobs.len(), shuffle_seed);
        let shuffled: Vec<(usize, Scheme)> = perm.iter().map(|&i| jobs[i]).collect();
        let warm_shuffled = with_threads(4, || {
            gex::exec::par_map(shuffled, |(wi, s)| run_point(wi, s, sms, true))
        });
        let mut warm: Vec<Option<GpuRunReport>> = vec![None; jobs.len()];
        for (k, &i) in perm.iter().enumerate() {
            warm[i] = Some(warm_shuffled[k].clone());
        }
        for (i, f) in fresh.iter().enumerate() {
            prop_assert_eq!(&cold[i], f, "cold-arena pool run diverged at job {}", i);
            prop_assert_eq!(
                warm[i].as_ref().unwrap(),
                f,
                "warmed-arena shuffled pool run diverged at job {}",
                i
            );
        }
    }
}

/// Arena recycling across stream-count changes: alternating single-stream
/// and two-tenant runs through the same thread-local arena yields reports
/// byte-identical to arena-disabled runs. This locks the multi-tenant
/// state (per-tenant dispatch queues, SM-ownership map, fault budgets)
/// into the arena reset contract.
#[test]
fn arena_recycles_across_single_and_multi_tenant_runs() {
    use gex::{PartitionPolicy, SharedRunReport, TenantId, TenantWorkload};
    let _g = GLOBALS_LOCK.lock().unwrap();
    let _cache_off = CacheOff::new();
    let run_single = |arena: bool| run_point(2, Scheme::ReplayQueue, 4, arena);
    let run_multi = |arena: bool| -> SharedRunReport {
        let ws = suite::parboil(Preset::Test);
        // ws[2] = histo (victim), ws[3] = lbm (budgeted noisy neighbor).
        let tenants = [
            TenantWorkload::new(
                TenantId::new("a"),
                ws[2].trace.clone(),
                ws[2].demand_residency(),
            ),
            TenantWorkload::new(TenantId::new("b"), ws[3].trace.clone(), ws[3].demand_residency())
                .fault_budget(4),
        ];
        Gpu::new(
            GpuConfig::kepler_k20().with_sms(4),
            Scheme::ReplayQueue,
            PagingMode::demand(Interconnect::nvlink()),
        )
        .arena(arena)
        .run_multi(&tenants, PartitionPolicy::Quarantine)
    };
    let fresh_single = run_single(false);
    let fresh_multi = run_multi(false);
    // Warm the arena with a multi-tenant run, then alternate shapes.
    let m1 = run_multi(true);
    let s1 = run_single(true);
    let m2 = run_multi(true);
    let s2 = run_single(true);
    assert_eq!(m1, fresh_multi, "cold-arena multi-tenant run diverged");
    assert_eq!(s1, fresh_single, "single-stream run on a multi-warmed arena diverged");
    assert_eq!(m2, fresh_multi, "multi-tenant run on a single-warmed arena diverged");
    assert_eq!(s2, fresh_single, "second single-stream run diverged");
}

/// Figure renders are identical across pool reuse and with arena reuse
/// globally disabled — the user-visible form of the same contract.
#[test]
fn figure_renders_survive_pool_and_arena_reuse() {
    let _g = GLOBALS_LOCK.lock().unwrap();
    let _cache_off = CacheOff::new();
    let first = with_threads(4, || gex::experiments::fig10(Preset::Test, 2).to_string());
    // The pool's worker arenas are warm now; render again.
    let second = with_threads(4, || gex::experiments::fig10(Preset::Test, 2).to_string());
    assert_eq!(first, second, "warmed arenas changed a figure render");
    gex::sim::set_arena_enabled(false);
    let fresh = with_threads(4, || gex::experiments::fig10(Preset::Test, 2).to_string());
    gex::sim::set_arena_enabled(true);
    assert_eq!(first, fresh, "arena reuse changed a figure render");
    assert!(!first.is_empty());
}
