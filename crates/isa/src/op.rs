//! Opcodes, comparison kinds, atomic kinds and execution-unit classes.
//!
//! The opcode set mimics "modern GPU ISAs with all the distinguishing
//! features" the paper lists in Section 5.1: fused multiply-add,
//! approximate complex math (SFU) instructions, predication, explicit
//! divergence management and a split between shared (on-chip, untranslated)
//! and global (translated, faultable) memory pipelines.

use std::fmt;

/// Integer/float comparison performed by `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal (bitwise over the operand type).
    Eq,
    /// Not equal.
    Ne,
    /// Less-than.
    Lt,
    /// Less-or-equal.
    Le,
    /// Greater-than.
    Gt,
    /// Greater-or-equal.
    Ge,
}

/// Operand interpretation for comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpType {
    /// Unsigned 64-bit integers.
    U64,
    /// Signed 64-bit integers.
    S64,
    /// IEEE-754 single precision (low 32 bits of the register).
    F32,
}

/// Read-modify-write operation of a global-memory atomic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AtomKind {
    /// `old + v`
    Add,
    /// `max(old, v)`
    Max,
    /// `min(old, v)`
    Min,
    /// Exchange: the new value replaces the old unconditionally.
    Exch,
    /// Compare-and-swap: store `v` only if `old == cmp`.
    Cas,
}

/// Memory address space of a load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Off-chip memory, translated through the TLBs; the only space whose
    /// accesses can page-fault (Section 2.1).
    Global,
    /// On-chip scratch-pad (CUDA `__shared__`); not subject to translation
    /// and therefore never faults.
    Shared,
}

/// Access width of a load/store in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl Width {
    /// The access width in bytes.
    pub fn bytes(self) -> u64 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Instruction opcode.
///
/// Operands live in the containing [`Instruction`](crate::instr::Instruction);
/// the opcode selects the operation and, via [`Opcode::unit`], the backend
/// execution unit that services it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ---- integer ALU (math units) ----
    /// `dst = src0`
    Mov,
    /// `dst = src0 + src1` (wrapping u64)
    Add,
    /// `dst = src0 - src1`
    Sub,
    /// `dst = src0 * src1` (low 64 bits)
    Mul,
    /// `dst = src0 * src1 + src2` (integer multiply-add)
    Mad,
    /// `dst = min(src0, src1)` unsigned
    Min,
    /// `dst = max(src0, src1)` unsigned
    Max,
    /// `dst = src0 << (src1 & 63)`
    Shl,
    /// `dst = src0 >> (src1 & 63)` (logical)
    Shr,
    /// `dst = src0 & src1`
    And,
    /// `dst = src0 | src1`
    Or,
    /// `dst = src0 ^ src1`
    Xor,
    /// `dst = !src0`
    Not,
    /// `dst = src0 % src1` (unsigned; `src1 == 0` yields 0, like SASS)
    Rem,
    /// `dst = src0 / src1` (unsigned; `src1 == 0` yields all-ones)
    Div,

    // ---- f32 ALU (math units) ----
    /// `dst = src0 + src1` (f32)
    FAdd,
    /// `dst = src0 - src1` (f32)
    FSub,
    /// `dst = src0 * src1` (f32)
    FMul,
    /// `dst = src0 * src1 + src2` — the fused multiply-add the paper calls a
    /// distinguishing feature of modern GPU ISAs.
    FFma,
    /// `dst = min(src0, src1)` (f32)
    FMin,
    /// `dst = max(src0, src1)` (f32)
    FMax,
    /// `dst = f32(src0 as i64)` — integer to float conversion.
    I2F,
    /// `dst = src0 as i64` (truncating f32-to-int conversion).
    F2I,

    // ---- special function unit (approximate complex math) ----
    /// `dst = 1.0 / src0` (f32, SFU)
    FRcp,
    /// `dst = sqrt(src0)` (f32, SFU)
    FSqrt,
    /// `dst = 1.0 / sqrt(src0)` (f32, SFU)
    FRsqrt,
    /// `dst = sin(src0)` (f32, SFU)
    FSin,
    /// `dst = cos(src0)` (f32, SFU)
    FCos,
    /// `dst = 2^src0` (f32, SFU)
    FExp2,
    /// `dst = log2(src0)` (f32, SFU)
    FLog2,

    // ---- predicate ----
    /// Set predicate: `pdst = cmp(src0, src1)`.
    Setp(CmpKind, CmpType),
    /// Select: `dst = guard-pred ? src0 : src1` (reads predicate `psrc`).
    Sel,

    // ---- control flow (branch unit) ----
    /// Branch to `target`; divergence reconverges at the instruction's
    /// `reconv` PC. Predicated branches may diverge.
    Bra,
    /// Thread block barrier (`bar.sync`).
    Bar,
    /// Terminate the thread.
    Exit,
    /// No operation (still occupies an issue slot and a math unit).
    Nop,

    // ---- memory (ld/st pipeline) ----
    /// Load: `dst = [src0 + imm]` in `Space` with `Width`.
    Ld(Space, Width),
    /// Store: `[src0 + imm] = src1` in `Space` with `Width`.
    St(Space, Width),
    /// Global-memory atomic: `dst = old; [src0 + imm] op= src1`.
    /// `Cas` additionally reads `src2` as the compare value.
    Atom(AtomKind, Width),
    /// Device-side heap allocation intrinsic: `dst = malloc(src0 bytes)`.
    ///
    /// Functionally this is a deterministic bump allocation in the heap VA
    /// region; the backing physical pages are *not* mapped, so first touch
    /// faults — the scenario of the paper's use case 2 (Section 4.2/5.4).
    Malloc,
}

/// Backend execution unit classes of the baseline SM (Table 1:
/// "2 math, 1 special func, 1 ld/st, 1 branch").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Integer / f32 ALU pipelines (2 units).
    Math,
    /// Special function unit (1 unit).
    Sfu,
    /// Load/store pipeline: global (translated) and shared memory (1 unit).
    LdSt,
    /// Branch unit (1 unit); also services `bar` and `exit`.
    Branch,
}

impl Opcode {
    /// The backend unit that executes this opcode.
    pub fn unit(self) -> Unit {
        use Opcode::*;
        match self {
            Mov | Add | Sub | Mul | Mad | Min | Max | Shl | Shr | And | Or | Xor | Not | Rem
            | Div | FAdd | FSub | FMul | FFma | FMin | FMax | I2F | F2I | Setp(..) | Sel | Nop => {
                Unit::Math
            }
            FRcp | FSqrt | FRsqrt | FSin | FCos | FExp2 | FLog2 => Unit::Sfu,
            Bra | Bar | Exit => Unit::Branch,
            Ld(..) | St(..) | Atom(..) | Malloc => Unit::LdSt,
        }
    }

    /// True for control-flow opcodes; fetching one briefly disables the
    /// warp's fetch in the baseline pipeline (Section 2.1).
    pub fn is_control(self) -> bool {
        matches!(self, Opcode::Bra | Opcode::Bar | Opcode::Exit)
    }

    /// True for accesses to the global (translated) address space — the only
    /// instructions that can page-fault (Section 3).
    pub fn is_global_mem(self) -> bool {
        matches!(
            self,
            Opcode::Ld(Space::Global, _) | Opcode::St(Space::Global, _) | Opcode::Atom(..)
        )
    }

    /// True for any memory opcode (global or shared).
    pub fn is_mem(self) -> bool {
        matches!(self, Opcode::Ld(..) | Opcode::St(..) | Opcode::Atom(..) | Opcode::Malloc)
    }

    /// True if this opcode writes memory (used by the functional simulator
    /// to classify first-touch pages).
    pub fn is_store_like(self) -> bool {
        matches!(self, Opcode::St(..) | Opcode::Atom(..))
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Opcode::*;
        match self {
            Setp(k, t) => write!(f, "setp.{k:?}.{t:?}"),
            Ld(s, w) => write!(f, "ld.{s:?}.b{}", w.bytes() * 8),
            St(s, w) => write!(f, "st.{s:?}.b{}", w.bytes() * 8),
            Atom(k, w) => write!(f, "atom.{k:?}.b{}", w.bytes() * 8),
            other => write!(f, "{}", format!("{other:?}").to_lowercase()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn units_match_table_1_partition() {
        assert_eq!(Opcode::FFma.unit(), Unit::Math);
        assert_eq!(Opcode::FRsqrt.unit(), Unit::Sfu);
        assert_eq!(Opcode::Ld(Space::Global, Width::B4).unit(), Unit::LdSt);
        assert_eq!(Opcode::Ld(Space::Shared, Width::B4).unit(), Unit::LdSt);
        assert_eq!(Opcode::Bra.unit(), Unit::Branch);
        assert_eq!(Opcode::Bar.unit(), Unit::Branch);
    }

    #[test]
    fn only_global_accesses_can_fault() {
        assert!(Opcode::Ld(Space::Global, Width::B8).is_global_mem());
        assert!(Opcode::St(Space::Global, Width::B4).is_global_mem());
        assert!(Opcode::Atom(AtomKind::Add, Width::B4).is_global_mem());
        assert!(!Opcode::Ld(Space::Shared, Width::B4).is_global_mem());
        assert!(!Opcode::St(Space::Shared, Width::B4).is_global_mem());
        assert!(!Opcode::FFma.is_global_mem());
        // malloc itself runs on the ld/st pipe but does not touch memory;
        // the *later* access to the returned pointer faults.
        assert!(!Opcode::Malloc.is_global_mem());
    }

    #[test]
    fn control_flow_classification() {
        assert!(Opcode::Bra.is_control());
        assert!(Opcode::Exit.is_control());
        assert!(!Opcode::Ld(Space::Global, Width::B4).is_control());
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn display_is_lowercase_ish() {
        assert_eq!(Opcode::FFma.to_string(), "ffma");
        assert_eq!(Opcode::Ld(Space::Global, Width::B4).to_string(), "ld.Global.b32");
    }
}
