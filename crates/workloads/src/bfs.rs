//! `bfs` — breadth-first search level expansion (Parboil).
//!
//! One level-synchronous expansion step: every thread owns a node, checks
//! whether it sits on the current frontier, and if so relaxes its
//! neighbours' levels with atomic-min. Highly divergent (most nodes are
//! off-frontier) with an irregular, data-dependent gather over the
//! adjacency lists.

use crate::types::{BufferKind, BufferSpec, Preset, VaAlloc, Workload};
use gex_isa::asm::Asm;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{AtomKind, CmpKind, CmpType, Width};
use gex_isa::reg::{Pred, Reg};
use gex_prng::Prng;

/// Fixed out-degree of the synthetic graph.
const DEGREE: u64 = 8;

fn nodes(preset: Preset) -> u64 {
    match preset {
        Preset::Test => 1024,
        Preset::Bench => 32 * 1024,
        Preset::Paper => 64 * 1024,
    }
}

/// Build the `bfs` workload: one frontier-expansion step on a random graph.
pub fn build(preset: Preset) -> Workload {
    let n = nodes(preset);
    let mut rng = Prng::seed_from_u64(0xbf5);
    let mut va = VaAlloc::new();
    let adj = va.alloc(n * DEGREE * 4);
    let levels = va.alloc(n * 4);

    let mut a = Asm::new();
    let (node, addr, lvl, e) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let (nb, t, newlvl, old) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let p = Pred(0);
    let on_frontier = Pred(1);

    a.gtid(node);
    // lvl = levels[node]; on_frontier = (lvl == 1)
    a.shl_imm(addr, node, 2);
    a.add(addr, addr, levels);
    a.ld_global_u32(lvl, addr, 0);
    a.setp(on_frontier, CmpKind::Eq, CmpType::U64, lvl, 1u64);
    a.if_begin(on_frontier, true);
    a.add(newlvl, lvl, 1u64);
    a.mov(e, 0u64);
    a.label("edges");
    // nb = adj[node*DEGREE + e]
    a.mad(t, node, DEGREE, e);
    a.shl_imm(t, t, 2);
    a.add(t, t, adj);
    a.ld_global_u32(nb, t, 0);
    // atomic-min on the neighbour's level
    a.shl_imm(t, nb, 2);
    a.add(t, t, levels);
    a.atom(AtomKind::Min, Width::B4, old, t, newlvl, 0);
    a.add(e, e, 1u64);
    a.setp(p, CmpKind::Lt, CmpType::U64, e, DEGREE);
    a.bra_if("edges", p, true);
    a.if_end();
    a.exit();

    let kernel = KernelBuilder::new("bfs", a.assemble().expect("bfs assembles"))
        .grid(Dim3::x((n / 128) as u32))
        .block(Dim3::x(128))
        .regs_per_thread(16)
        .build()
        .expect("bfs kernel");

    let mut image = MemImage::new();
    for i in 0..n * DEGREE {
        image.write_u32(adj + i * 4, rng.gen_range(0..n) as u32);
    }
    // ~1/8 of the nodes sit on the current frontier (level 1); the rest are
    // unvisited (large level).
    for i in 0..n {
        let lvl = if rng.gen_range(0..8) == 0 { 1 } else { 1_000_000 };
        image.write_u32(levels + i * 4, lvl);
    }

    Workload::build(
        "bfs",
        &kernel,
        image,
        vec![
            BufferSpec { name: "adj", addr: adj, len: n * DEGREE * 4, kind: BufferKind::Input },
            // levels is read-write; treating it as input keeps it CPU-dirty
            // under demand paging, which matches a multi-step BFS.
            BufferSpec { name: "levels", addr: levels, len: n * 4, kind: BufferKind::Input },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_dominates() {
        let w = build(Preset::Test);
        let partial = w
            .trace
            .blocks
            .iter()
            .flat_map(|b| b.instrs().iter())
            .filter(|d| d.active != gex_isa::FULL_MASK && d.active != 0)
            .count();
        assert!(partial > 0, "frontier check must diverge");
    }

    #[test]
    fn frontier_fraction_is_sparse() {
        let w = build(Preset::Test);
        assert!(w.func.atomics > 0);
        // Edge relaxations run under the frontier mask: the average atomic
        // executes with far fewer than 32 active lanes.
        let (mut lanes, mut count) = (0u64, 0u64);
        for d in w.trace.blocks.iter().flat_map(|b| b.instrs().iter()) {
            if matches!(d.op, gex_isa::op::Opcode::Atom(..)) {
                lanes += d.active.count_ones() as u64;
                count += 1;
            }
        }
        let avg = lanes as f64 / count as f64;
        assert!(avg < 16.0, "frontier should be sparse: avg {avg:.1} active lanes");
    }
}
