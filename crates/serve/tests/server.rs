//! Integration tests for the campaign server: full TCP round trips
//! against in-process server instances — admission, fairness-adjacent
//! scheduling behaviour, tenant quarantine isolation, cancellation, and
//! shutdown/restart resumption from the journal directory.

use gex::workloads::suite;
use gex::{PagingMode, Preset, Scheme};
use gex_serve::server::{self, ServerConfig};
use gex_serve::wire::Inject;
use gex_serve::{CampaignSpec, Client, ClientConfig, ClientError, Event, PointResult};
use std::time::Duration;

fn fast_client(addr: &std::net::SocketAddr) -> Client {
    Client::connect(
        &addr.to_string(),
        ClientConfig {
            connect_retries: 8,
            backoff: Duration::from_millis(20),
            timeout: Duration::from_secs(60),
        },
    )
    .expect("connect to in-process server")
}

fn spec(workloads: &[&str], schemes: &[Scheme]) -> CampaignSpec {
    CampaignSpec::new(
        Preset::Test,
        2,
        workloads.iter().map(|s| s.to_string()).collect(),
        schemes.to_vec(),
    )
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("gex-serve-test-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn healthy_campaign_matches_direct_simulation() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let mut c = fast_client(&handle.addr());
    c.ping().expect("server answers ping");

    let schemes = [Scheme::Baseline, Scheme::ReplayQueue];
    let s = spec(&["histo", "lbm"], &schemes);
    let admitted = c.submit("alice", "grid", &s).expect("admit");
    assert_eq!(admitted.points, 4);

    let done = c.wait("alice", "grid", Duration::from_millis(20)).expect("finish");
    assert_eq!(done.state, "done");
    assert_eq!(done.done, 4);

    let (_, points) = c.results("alice", "grid").expect("results");
    assert_eq!(points.len(), 4);
    for p in &points {
        let PointResult::Done { key, cycles } = p else { panic!("unexpected outcome {p:?}") };
        let (wname, sdbg) = key.split_once('/').unwrap();
        let scheme = *schemes.iter().find(|s| format!("{s:?}") == sdbg).unwrap();
        let w = suite::by_name(wname, Preset::Test).unwrap();
        let direct = gex::run_workload(&w, scheme, PagingMode::AllResident, 2);
        assert_eq!(direct.cycles, *cycles, "{key}: server must reproduce the simulator exactly");
    }
    handle.join();
}

#[test]
fn resubmitting_the_same_spec_attaches_instead_of_duplicating() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let mut c = fast_client(&handle.addr());
    let s = spec(&["histo"], &[Scheme::Baseline]);
    c.submit("t", "c", &s).expect("first admit");
    c.submit("t", "c", &s).expect("identical resubmit attaches");

    // Same name, different grid: a hard error, not silent replacement.
    let other = spec(&["lbm"], &[Scheme::Baseline]);
    match c.submit("t", "c", &other) {
        Err(ClientError::Rejected(m)) => assert!(m.contains("different spec"), "{m}"),
        other => panic!("conflicting spec must be rejected, got {other:?}"),
    }
    handle.join();
}

#[test]
fn admission_control_sheds_explicitly_past_the_queue_bound() {
    let handle = server::start(ServerConfig {
        max_pending_points: 3,
        // No dispatch drain during the test: batch of 1 and a grid big
        // enough that the queue stays over the bound.
        batch: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = fast_client(&handle.addr());

    let big = spec(&["histo", "lbm"], &[Scheme::Baseline, Scheme::WdCommit]);
    match c.submit("greedy", "too-big", &big) {
        Err(ClientError::Shed(m)) => {
            assert!(m.contains("queue full"), "shed reply names the reason: {m}")
        }
        other => panic!("a 4-point grid past a 3-point bound must shed, got {other:?}"),
    }
    // Shedding is not an error state: a smaller campaign is admitted.
    let small = spec(&["histo"], &[Scheme::Baseline]);
    c.submit("greedy", "small", &small).expect("within bounds");
    let done = c.wait("greedy", "small", Duration::from_millis(20)).expect("finish");
    assert_eq!(done.state, "done");
    handle.join();
}

#[test]
fn campaign_count_bound_sheds_too() {
    let handle = server::start(ServerConfig { max_campaigns: 1, ..ServerConfig::default() })
        .unwrap();
    let mut c = fast_client(&handle.addr());
    c.submit("a", "one", &spec(&["histo"], &[Scheme::Baseline])).expect("first");
    match c.submit("a", "two", &spec(&["lbm"], &[Scheme::Baseline])) {
        Err(ClientError::Shed(m)) => assert!(m.contains("campaign limit"), "{m}"),
        other => panic!("second campaign must shed, got {other:?}"),
    }
    handle.join();
}

#[test]
fn a_poisoned_tenant_is_quarantined_while_the_healthy_one_completes() {
    // Serialize dispatch (batch 1) so the fault budget trips after
    // exactly two failed points and the rest shed deterministically.
    let handle = server::start(ServerConfig {
        batch: 1,
        tenant_fault_budget: 2,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut evil = fast_client(&handle.addr());
    let mut good = fast_client(&handle.addr());

    let mut poisoned = spec(&["histo"], &[Scheme::Baseline, Scheme::WdCommit,
                                          Scheme::WdLastCheck, Scheme::ReplayQueue]);
    poisoned.inject = Some(Inject::Panic);
    let healthy = spec(&["lbm"], &[Scheme::Baseline, Scheme::ReplayQueue]);

    evil.submit("evil", "bomb", &poisoned).expect("admitted before any fault");
    good.submit("good", "grid", &healthy).expect("admit");

    let evil_final = evil.wait("evil", "bomb", Duration::from_millis(20)).expect("terminal");
    assert_eq!(evil_final.state, "quarantined");
    assert_eq!(evil_final.quarantined, 4, "every poisoned point ends quarantined or shed");

    let (_, points) = evil.results("evil", "bomb").expect("results");
    let kinds: Vec<String> = points
        .iter()
        .map(|p| match p {
            PointResult::Quarantined { kind, .. } => kind.clone(),
            other => panic!("unexpected outcome {other:?}"),
        })
        .collect();
    assert_eq!(
        kinds.iter().filter(|k| *k == "panic").count(),
        2,
        "exactly the fault budget's worth of points actually ran: {kinds:?}"
    );
    assert_eq!(
        kinds.iter().filter(|k| *k == "shed").count(),
        2,
        "the rest shed without consuming simulator time: {kinds:?}"
    );

    // The tenant is now persona non grata...
    match evil.submit("evil", "again", &healthy) {
        Err(ClientError::Rejected(m)) => assert!(m.contains("quarantined"), "{m}"),
        other => panic!("quarantined tenant must be rejected, got {other:?}"),
    }
    // ...while the healthy tenant is untouched and exact.
    let good_final = good.wait("good", "grid", Duration::from_millis(20)).expect("finish");
    assert_eq!(good_final.state, "done");
    assert_eq!(good_final.done, 2);
    handle.join();
}

/// A partitioned campaign runs every point as a two-tenant shared-GPU
/// simulation under the submitting tenant's identity. Points whose stream
/// storms (blows the in-run fault budget and gets quarantined inside the
/// run) still complete — but the storm charges the server-side tenant
/// fault budget, locking the tenant out.
#[test]
fn partitioned_points_share_the_gpu_and_in_run_storms_charge_the_tenant() {
    use gex::{Gpu, GpuConfig, Interconnect, PartitionPolicy, TenantId, TenantWorkload};
    let handle = server::start(ServerConfig {
        batch: 1,
        // `histo` opens ~3 fresh fault regions under the Test preset and
        // stays under the stream budget; `lbm` opens ~20 and storms.
        stream_fault_budget: 8,
        tenant_fault_budget: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = fast_client(&handle.addr());
    let mut s = spec(&["histo", "lbm"], &[Scheme::ReplayQueue]);
    s.partition = Some(PartitionPolicy::Quarantine);
    c.submit("alice", "shared", &s).expect("admit");
    let done = c.wait("alice", "shared", Duration::from_millis(20)).expect("finish");
    // The storm point *completes*: the campaign is done, not quarantined.
    assert_eq!(done.state, "done");
    assert_eq!(done.done, 2);

    // Every reported cycle count reproduces a direct shared simulation of
    // the tenant's stream next to the server's background neighbor.
    let (_, points) = c.results("alice", "shared").expect("results");
    let bg = suite::by_name("histo", Preset::Test).unwrap();
    for p in &points {
        let PointResult::Done { key, cycles } = p else { panic!("unexpected outcome {p:?}") };
        let wname = key.split_once('/').unwrap().0;
        let w = suite::by_name(wname, Preset::Test).unwrap();
        let tenants = [
            TenantWorkload::new(TenantId::new("alice"), w.trace.clone(), w.demand_residency())
                .fault_budget(8),
            TenantWorkload::new(
                TenantId::new("serve/background"),
                bg.trace.clone(),
                bg.demand_residency(),
            ),
        ];
        let rep = Gpu::new(
            GpuConfig::kepler_k20().with_sms(2),
            Scheme::ReplayQueue,
            PagingMode::demand(Interconnect::nvlink()),
        )
        .try_run_multi(&tenants, PartitionPolicy::Quarantine)
        .expect("shared run completes");
        assert_eq!(
            rep.tenants[0].cycles, *cycles,
            "{key}: server must reproduce the shared simulation exactly (and report \
             decoded cycles, not the packed journal value)"
        );
        assert_eq!(
            rep.tenants[0].quarantined,
            wname == "lbm",
            "{key}: exactly the lbm stream must storm"
        );
    }

    // The in-run storm consumed the tenant's whole fault budget even
    // though no point failed.
    match c.submit("alice", "again", &spec(&["histo"], &[Scheme::Baseline])) {
        Err(ClientError::Rejected(m)) => assert!(m.contains("quarantined"), "{m}"),
        other => panic!("a stormy tenant must be locked out, got {other:?}"),
    }
    // An unrelated tenant is unaffected.
    c.submit("bob", "fine", &spec(&["histo"], &[Scheme::Baseline])).expect("admit");
    assert_eq!(c.wait("bob", "fine", Duration::from_millis(20)).expect("finish").state, "done");
    handle.join();
}

/// Unschedulable GPU shapes — zero SMs, or a partitioned campaign on a
/// single-SM GPU (no room for the background neighbor) — are rejected at
/// admission with a clean wire error instead of panicking a simulator
/// worker, and the submitting tenant is *not* quarantined by the reject.
#[test]
fn unschedulable_specs_are_rejected_cleanly() {
    use gex::PartitionPolicy;
    let handle = server::start(ServerConfig::default()).unwrap();
    let mut c = fast_client(&handle.addr());

    let mut zero = spec(&["histo"], &[Scheme::Baseline]);
    zero.sms = 0;
    match c.submit("t", "no-sms", &zero) {
        Err(ClientError::Rejected(m)) => assert!(m.contains("at least one SM"), "{m}"),
        other => panic!("a zero-SM spec must be rejected, got {other:?}"),
    }

    let mut tight = spec(&["histo"], &[Scheme::ReplayQueue]);
    tight.sms = 1;
    tight.partition = Some(PartitionPolicy::Quarantine);
    match c.submit("t", "too-tight", &tight) {
        Err(ClientError::Rejected(m)) => assert!(m.contains("at least 2 SMs"), "{m}"),
        other => panic!("a 1-SM partitioned spec must be rejected, got {other:?}"),
    }

    // The rejects were admission control, not failures: the same tenant
    // still submits and completes a healthy campaign.
    c.submit("t", "fine", &spec(&["histo"], &[Scheme::Baseline])).expect("admit");
    assert_eq!(c.wait("t", "fine", Duration::from_millis(20)).expect("finish").state, "done");
    handle.join();
}

/// A spec carrying `sm_threads` runs the points with the parallel
/// two-phase tick and reports exactly the cycles of a serial direct
/// simulation — the wire knob changes execution strategy, never results.
#[test]
fn sm_threads_spec_reproduces_serial_results() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let mut c = fast_client(&handle.addr());
    let mut s = spec(&["histo", "sad"], &[Scheme::WdLastCheck]);
    s.sm_threads = Some(2);
    c.submit("t", "par", &s).expect("admit");
    let done = c.wait("t", "par", Duration::from_millis(20)).expect("finish");
    assert_eq!(done.state, "done");
    let (_, points) = c.results("t", "par").expect("results");
    for p in &points {
        let PointResult::Done { key, cycles } = p else { panic!("unexpected outcome {p:?}") };
        let wname = key.split_once('/').unwrap().0;
        let w = suite::by_name(wname, Preset::Test).unwrap();
        let direct = gex::run_workload(&w, Scheme::WdLastCheck, PagingMode::AllResident, 2);
        assert_eq!(direct.cycles, *cycles, "{key}: parallel tick must match serial cycles");
    }
    handle.join();
}

#[test]
fn cancel_drops_queued_points_and_is_terminal() {
    let handle = server::start(ServerConfig { batch: 1, ..ServerConfig::default() }).unwrap();
    let mut c = fast_client(&handle.addr());
    let s = spec(&["histo", "lbm", "sgemm"], &[Scheme::Baseline, Scheme::WdCommit]);
    c.submit("t", "big", &s).expect("admit");
    let after = c.cancel("t", "big").expect("cancel");
    assert!(after.done + after.cancelled <= 6);
    let final_ = c.wait("t", "big", Duration::from_millis(20)).expect("drain");
    assert_eq!(final_.state, "cancelled");
    assert_eq!(final_.done + final_.cancelled, 6, "every point resolves");

    match c.cancel("t", "nonexistent") {
        Err(ClientError::Rejected(m)) => assert!(m.contains("unknown"), "{m}"),
        other => panic!("cancelling an unknown campaign must be rejected, got {other:?}"),
    }

    // Cancelling a campaign that already finished is an idempotent no-op:
    // the state stays `done`, not `cancelled`.
    let s2 = spec(&["histo"], &[Scheme::Baseline]);
    c.submit("t", "small", &s2).expect("admit small");
    let done = c.wait("t", "small", Duration::from_millis(20)).expect("finish");
    assert_eq!(done.state, "done");
    let after = c.cancel("t", "small").expect("cancel finished campaign");
    assert_eq!(after.state, "done", "cancel must not re-label a finished campaign");
    assert_eq!(after.done, 1);
    handle.join();
}

#[test]
fn watch_replays_history_and_streams_to_terminal() {
    let handle = server::start(ServerConfig::default()).unwrap();
    let mut c = fast_client(&handle.addr());
    let s = spec(&["histo"], &[Scheme::Baseline, Scheme::ReplayQueue]);
    c.submit("w", "obs", &s).expect("admit");
    c.wait("w", "obs", Duration::from_millis(20)).expect("finish first");

    // A watcher attaching after the fact still sees every point (replay)
    // and the terminal state.
    let mut watcher = fast_client(&handle.addr());
    let mut seen = Vec::new();
    let terminal = watcher
        .watch("w", "obs", |e| seen.push(e.clone()))
        .expect("watch terminal campaign");
    assert_eq!(terminal, "done");
    let point_keys: Vec<&str> = seen
        .iter()
        .filter_map(|e| match e {
            Event::Point { key, .. } => Some(key.as_str()),
            _ => None,
        })
        .collect();
    assert_eq!(point_keys, vec!["histo/Baseline", "histo/ReplayQueue"]);
    handle.join();
}

#[test]
fn shutdown_and_restart_resume_from_the_journal_byte_identically() {
    let dir = temp_dir("restart");
    let schemes = [Scheme::Baseline, Scheme::WdCommit, Scheme::ReplayQueue];
    let s = spec(&["histo", "lbm"], &schemes);

    // Phase 1: admit, let at least one point finish, stop the server.
    let first = server::start(ServerConfig {
        journal_dir: Some(dir.clone()),
        batch: 1,
        ..ServerConfig::default()
    })
    .unwrap();
    {
        let mut c = fast_client(&first.addr());
        c.submit("alice", "resume-me", &s).expect("admit");
        loop {
            let st = c.status("alice", "resume-me").expect("status");
            if st.done >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    first.join();

    // Phase 2: a fresh server on the same directory resumes the campaign
    // without any client action and completes it.
    let second = server::start(ServerConfig {
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = fast_client(&second.addr());
    let done = c.wait("alice", "resume-me", Duration::from_millis(20)).expect("finish");
    assert_eq!(done.state, "done");
    assert_eq!(done.points, 6);
    assert!(done.resumed >= 1, "journaled points must be served from disk");

    // Byte-identical to direct simulation, resumed and fresh points alike.
    let (_, points) = c.results("alice", "resume-me").expect("results");
    for p in &points {
        let PointResult::Done { key, cycles } = p else { panic!("unexpected {p:?}") };
        let (wname, sdbg) = key.split_once('/').unwrap();
        let scheme = *schemes.iter().find(|s| format!("{s:?}") == sdbg).unwrap();
        let w = suite::by_name(wname, Preset::Test).unwrap();
        let direct = gex::run_workload(&w, scheme, PagingMode::AllResident, 2);
        assert_eq!(direct.cycles, *cycles, "{key} must survive the restart bit-for-bit");
    }

    // Cancellation is durable too: cancel an in-flight campaign, restart,
    // still cancelled — while the finished campaign stays `done` (cancel
    // after completion is a no-op and must not write a marker).
    // A distinct seed keeps these points out of the result cache (the
    // first campaign's identical points would otherwise answer
    // instantly, racing the cancel).
    let mut slow = s.clone();
    slow.seed = Some(7);
    c.submit("alice", "kill-me", &slow).expect("admit second campaign");
    let mid = c.cancel("alice", "kill-me").expect("cancel in flight");
    assert!(mid.done < 6, "cancel must land before the campaign finishes");
    let post = c.cancel("alice", "resume-me").expect("cancel post-completion is fine");
    assert_eq!(post.state, "done", "a finished campaign cannot be re-labelled");
    second.join();
    let third = server::start(ServerConfig {
        journal_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let mut c = fast_client(&third.addr());
    let st = c.status("alice", "kill-me").expect("status");
    assert_eq!(st.state, "cancelled", "the cancel marker survives restarts");
    let st = c.status("alice", "resume-me").expect("status");
    assert_eq!(st.state, "done", "no stray cancel marker on the finished campaign");
    third.join();
    let _ = std::fs::remove_dir_all(&dir);
}
