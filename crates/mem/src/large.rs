//! Large-page (2 MB) support: constants, the page-size policy knob and
//! the process-wide default.
//!
//! Mosaic-style application-transparent huge pages: the memory system
//! keeps 4 KB pages as the base translation granularity and *coalesces*
//! a 2 MB frame's 512 subpages into one large mapping when they are all
//! resident, contiguous in physical memory and owned by one allocator
//! (contiguity-conserving allocation makes that the common case). A
//! write-fault or eviction inside a large page *splinters* it back to
//! 4 KB mappings without stalling the SMs. Fault-handling granularity
//! stays at the 64 KB region ([`crate::page_table::REGION_BYTES`])
//! throughout — large pages change translation reach and fault rate, not
//! the fault protocol.

use crate::config::Cycle;
use gex_isa::PAGE_BYTES;
use std::sync::atomic::{AtomicU8, Ordering};

/// Bytes per large page (the x86/ARM 2 MB leaf).
pub const LARGE_PAGE_BYTES: u64 = 2 * 1024 * 1024;

/// 4 KB subpages per 2 MB frame.
pub const SUBPAGES_PER_LARGE: u64 = LARGE_PAGE_BYTES / PAGE_BYTES;

/// 64 KB fault regions per 2 MB frame.
pub const REGIONS_PER_LARGE: u64 = LARGE_PAGE_BYTES / crate::page_table::REGION_BYTES;

/// Cycles a background coalesce pass takes from trigger to the large
/// mapping going live (page-table rewrite plus the promote shootdown).
/// Faults that land on a frame mid-pass are *held* until the pass
/// settles, never dropped.
pub const COALESCE_CYCLES: Cycle = 2_000;

/// The 2 MB-aligned frame address containing `addr`.
pub fn frame_of(addr: u64) -> u64 {
    addr & !(LARGE_PAGE_BYTES - 1)
}

/// Counters for the large-page machinery (all zero under
/// [`PageSizePolicy::Small`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LpStats {
    /// Background coalesce passes scheduled.
    pub passes: u64,
    /// Frames promoted to one 2 MB mapping.
    pub coalesced: u64,
    /// Large mappings splintered back to 4 KB.
    pub splintered: u64,
    /// Passes cancelled (eviction or shootdown hit the frame mid-pass).
    pub cancelled: u64,
    /// Faults held — not dropped — because their frame had a pass in
    /// flight, then re-dispatched when the pass settled.
    pub held_faults: u64,
    /// Page-table walks that terminated at a 2 MB leaf (one level
    /// shorter than a 4 KB walk).
    pub walks_large: u64,
}

/// Page-size policy for a run (Mosaic's operating modes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageSizePolicy {
    /// 4 KB pages only — the pre-large-page simulator, byte-for-byte.
    #[default]
    Small,
    /// 4 KB demand paging with transparent background coalescing to 2 MB
    /// (and splintering back under eviction or write faults).
    Transparent,
    /// Faults map the whole 2 MB frame up front: lowest fault rate,
    /// largest per-fault transfer and allocation bloat.
    HugeOnly,
}

impl PageSizePolicy {
    /// Stable lowercase wire token (campaign specs, CLI flags).
    pub fn token(self) -> &'static str {
        match self {
            PageSizePolicy::Small => "small",
            PageSizePolicy::Transparent => "transparent",
            PageSizePolicy::HugeOnly => "hugeonly",
        }
    }

    /// Parse a [`PageSizePolicy::token`] back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "small" => Some(PageSizePolicy::Small),
            "transparent" => Some(PageSizePolicy::Transparent),
            "hugeonly" => Some(PageSizePolicy::HugeOnly),
            _ => None,
        }
    }

    /// True if the run uses any large-page machinery at all.
    pub fn uses_large_pages(self) -> bool {
        self != PageSizePolicy::Small
    }
}

impl std::fmt::Display for PageSizePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.token())
    }
}

/// Process-wide default policy: 0 = unset (consult `GEX_PAGE_SIZE`, then
/// [`PageSizePolicy::Small`]), 1..=3 = an explicit
/// [`set_default_page_size`] call. Mirrors the `--max-cycles` default
/// plumbing: harness binaries write it once, `MemConfig::kepler_k20`
/// reads it, explicit builder calls always win.
static DEFAULT_PAGE_SIZE: AtomicU8 = AtomicU8::new(0);

fn encode(p: PageSizePolicy) -> u8 {
    match p {
        PageSizePolicy::Small => 1,
        PageSizePolicy::Transparent => 2,
        PageSizePolicy::HugeOnly => 3,
    }
}

/// Set the process-wide default page-size policy that freshly built
/// configurations inherit (the `--pagesize` flag). Configs built before
/// the call are unaffected.
pub fn set_default_page_size(p: PageSizePolicy) {
    DEFAULT_PAGE_SIZE.store(encode(p), Ordering::Relaxed);
}

/// The current default policy: an explicit [`set_default_page_size`]
/// call wins, else the `GEX_PAGE_SIZE` environment variable
/// (`small` / `transparent` / `hugeonly`), else
/// [`PageSizePolicy::Small`]. Unknown env values fall back to `Small`
/// rather than failing a run at config time.
pub fn default_page_size() -> PageSizePolicy {
    match DEFAULT_PAGE_SIZE.load(Ordering::Relaxed) {
        1 => PageSizePolicy::Small,
        2 => PageSizePolicy::Transparent,
        3 => PageSizePolicy::HugeOnly,
        _ => std::env::var("GEX_PAGE_SIZE")
            .ok()
            .and_then(|v| PageSizePolicy::parse(&v))
            .unwrap_or(PageSizePolicy::Small),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        assert_eq!(LARGE_PAGE_BYTES, 2 * 1024 * 1024);
        assert_eq!(SUBPAGES_PER_LARGE, 512);
        assert_eq!(REGIONS_PER_LARGE, 32);
        assert_eq!(frame_of(0), 0);
        assert_eq!(frame_of(LARGE_PAGE_BYTES - 1), 0);
        assert_eq!(frame_of(LARGE_PAGE_BYTES), LARGE_PAGE_BYTES);
        assert_eq!(frame_of(0x1234_5678), 0x1220_0000);
    }

    #[test]
    fn tokens_round_trip() {
        for p in [PageSizePolicy::Small, PageSizePolicy::Transparent, PageSizePolicy::HugeOnly] {
            assert_eq!(PageSizePolicy::parse(p.token()), Some(p));
            assert_eq!(format!("{p}"), p.token());
        }
        assert_eq!(PageSizePolicy::parse("huge"), None);
        assert_eq!(PageSizePolicy::default(), PageSizePolicy::Small);
    }
}
