//! Multi-kernel sessions: iterative workloads pay their migrations once.
//!
//! Runs four lbm-style time steps under demand paging. The first step
//! migrates the lattice from CPU memory (the on-demand replacement for an
//! up-front `cudaMemcpy`); subsequent steps find it resident and run
//! fault-free — the programmability story the paper's introduction opens
//! with.
//!
//! ```text
//! cargo run --release -p gex --example multi_step
//! ```

use gex::workloads::{suite, Preset};
use gex::{Gpu, GpuConfig, Interconnect, PagingMode, Scheme, Session};

fn main() {
    let w = suite::by_name("lbm", Preset::Bench).expect("lbm exists");
    let gpu = Gpu::new(
        GpuConfig::kepler_k20(),
        Scheme::ReplayQueue,
        PagingMode::demand(Interconnect::nvlink()),
    );
    let mut session = Session::new(gpu);

    println!("lbm, 4 time steps, data initially in CPU memory (NVLink):");
    for step in 1..=4 {
        let r = session.launch(&w.trace, &w.demand_residency());
        println!(
            "  step {step}: {:>8} cycles  {:>3} migrations  {:>3} alloc-only faults",
            r.cycles,
            r.cpu.migrations,
            r.cpu.allocations
        );
    }
    println!(
        "\n{} regions resident after the run; only step 1 paid the paging cost.",
        session.resident_regions().count()
    );
}
