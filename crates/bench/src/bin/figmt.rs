//! Regenerate Figure MT: victim slowdown and noisy-neighbor containment
//! across the five exception schemes and the three SM-partitioning
//! policies (shared, static, quarantine).
//!
//! Runs under sweep supervision: `--deadline N` budgets each point,
//! `--resume` / `--journal PATH` make the campaign resumable, and failed
//! points are quarantined (reported below the figure) instead of taking
//! the run down. Exits 2 if anything was quarantined.

use gex_bench::{sms_from_env, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.apply_max_cycles();
    args.apply_page_size();
    let preset = args.preset();
    let sms = sms_from_env();
    let fig = gex::experiments::fig_mt_supervised(preset, sms, &args.sweep_options("figmt"));
    println!("{fig}");
    if !fig.quarantine.is_empty() {
        std::process::exit(2);
    }
}
