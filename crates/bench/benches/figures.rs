//! Self-timed benches: one group per table/figure of the paper.
//!
//! Each group times the experiment that regenerates the corresponding
//! result at the `Test` preset (the harness binaries run the full `Paper`
//! preset); traces are built once outside the measurement loop, so the
//! benches time the cycle-level simulation itself. Runs with the
//! in-repo [`gex_bench::timing`] harness — the workspace builds offline
//! and cannot link Criterion.

use gex_bench::timing::BenchRunner;
use gex::workloads::{suite, Preset, Workload};
use gex::{
    BlockSwitchConfig, Gpu, GpuConfig, GpuRunReport, Interconnect, LocalFaultConfig, PagingMode,
    Scheme,
};

fn run(w: &Workload, scheme: Scheme, paging: PagingMode, sms: u32) -> GpuRunReport {
    // AllResident ignores the residency; demand modes use the Figure 12
    // placement (inputs CPU-dirty, outputs CPU-clean).
    Gpu::new(GpuConfig::kepler_k20().with_sms(sms), scheme, paging)
        .run(&w.trace, &w.demand_residency())
}

/// Figure 10: normalized performance of the preemptible pipelines.
fn bench_fig10(r: &mut BenchRunner) {
    for name in ["sgemm", "lbm", "histo", "stencil"] {
        let w = suite::by_name(name, Preset::Test).expect("known workload");
        r.bench(&format!("fig10/scheme_sweep/{name}"), || {
            let base = run(&w, Scheme::Baseline, PagingMode::AllResident, 2).cycles;
            let wd = run(&w, Scheme::WdCommit, PagingMode::AllResident, 2).cycles;
            let rq = run(&w, Scheme::ReplayQueue, PagingMode::AllResident, 2).cycles;
            assert!(base <= wd.max(rq) || base <= wd.min(rq) + base);
            (base, wd, rq)
        });
    }
}

/// Figure 11: operand-log sizes on the log-sensitive benchmark.
fn bench_fig11(r: &mut BenchRunner) {
    let w = suite::by_name("lbm", Preset::Test).expect("lbm");
    for kib in [8u32, 16, 32] {
        r.bench(&format!("fig11/operand_log/{kib}"), || {
            run(&w, Scheme::operand_log_kib(kib), PagingMode::AllResident, 2).cycles
        });
    }
}

/// Figure 12: block switching vs plain demand paging.
fn bench_fig12(r: &mut BenchRunner) {
    let w = suite::by_name("sgemm", Preset::Test).expect("sgemm");
    let ic = Interconnect::nvlink();
    r.bench("fig12/demand_plain", || {
        Gpu::new(GpuConfig::kepler_k20().with_sms(4), Scheme::ReplayQueue, PagingMode::demand(ic))
            .run(&w.trace, &w.demand_residency())
            .cycles
    });
    r.bench("fig12/demand_switching", || {
        Gpu::new(
            GpuConfig::kepler_k20().with_sms(4),
            Scheme::ReplayQueue,
            PagingMode::Demand {
                interconnect: ic,
                block_switch: Some(BlockSwitchConfig::default()),
                local_handling: None,
            },
        )
        .run(&w.trace, &w.demand_residency())
        .cycles
    });
}

/// Figure 13: local handling of malloc-backed faults.
fn bench_fig13(r: &mut BenchRunner) {
    let w = gex::workloads::halloc::fixed(Preset::Test);
    let ic = Interconnect::pcie();
    r.bench("fig13/cpu_handled", || {
        Gpu::new(GpuConfig::kepler_k20().with_sms(4), Scheme::ReplayQueue, PagingMode::demand(ic))
            .run(&w.trace, &w.heap_lazy_residency())
            .cycles
    });
    r.bench("fig13/gpu_local", || {
        Gpu::new(
            GpuConfig::kepler_k20().with_sms(4),
            Scheme::ReplayQueue,
            PagingMode::Demand {
                interconnect: ic,
                block_switch: None,
                local_handling: Some(LocalFaultConfig::default()),
            },
        )
        .run(&w.trace, &w.heap_lazy_residency())
        .cycles
    });
}

/// Figure 14: local handling of output-page faults.
fn bench_fig14(r: &mut BenchRunner) {
    let w = suite::by_name("histo", Preset::Test).expect("histo");
    let ic = Interconnect::pcie();
    for (label, local) in [("cpu_handled", None), ("gpu_local", Some(LocalFaultConfig::default()))]
    {
        r.bench(&format!("fig14/outputs_lazy/{label}"), || {
            Gpu::new(
                GpuConfig::kepler_k20().with_sms(4),
                Scheme::ReplayQueue,
                PagingMode::Demand {
                    interconnect: ic,
                    block_switch: None,
                    local_handling: local,
                },
            )
            .run(&w.trace, &w.outputs_lazy_residency())
            .cycles
        });
    }
}

/// Tables 1 and 2 render from live models; timing them pins the power
/// model's cost (trivial) and keeps the renderers exercised.
fn bench_tables(r: &mut BenchRunner) {
    r.bench("tables/table1_render", gex::experiments::table1);
    r.bench("tables/table2_render", gex::experiments::table2);
}

/// The resilience harness: one clean and one chaos-injected demand run
/// (Figure-12 configuration), so the injector's overhead stays visible.
fn bench_injection(r: &mut BenchRunner) {
    let w = suite::by_name("histo", Preset::Test).expect("histo");
    let ic = Interconnect::nvlink();
    for (label, plan) in [
        ("clean", gex::InjectionPlan::none()),
        ("chaos", gex::InjectionPlan::chaos(7)),
    ] {
        r.bench(&format!("inject/{label}"), || {
            Gpu::new(GpuConfig::kepler_k20().with_sms(4), Scheme::ReplayQueue, PagingMode::demand(ic))
                .inject(plan.clone())
                .run(&w.trace, &w.demand_residency())
                .cycles
        });
    }
}

fn main() {
    let mut r = BenchRunner::from_args();
    bench_fig10(&mut r);
    bench_fig11(&mut r);
    bench_fig12(&mut r);
    bench_fig13(&mut r);
    bench_fig14(&mut r);
    bench_tables(&mut r);
    bench_injection(&mut r);
    r.finish();
}
