//! Dynamic (post-execution) instruction traces.
//!
//! The functional simulator resolves all control flow and memory addresses,
//! so each warp's trace is a *linear* sequence of [`DynInstr`]s. The timing
//! model replays this sequence through the SM pipeline; squashing a faulted
//! instruction and replaying it later simply re-visits the same trace entry,
//! exactly like the paper's replay of the architectural instruction.

use crate::op::{Opcode, Space, Unit};
use crate::reg::RegId;

/// How the timing model must treat a dynamic instruction beyond its unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DynKind {
    /// Ordinary instruction.
    Normal,
    /// Control-flow instruction (fetch is disabled from fetch to commit).
    Branch,
    /// Thread-block barrier: the warp stalls at issue until all warps of
    /// the block arrive.
    Barrier,
    /// Warp termination (all remaining lanes exited).
    Exit,
}

/// Memory behaviour of one dynamic warp instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRef {
    /// Address space accessed.
    pub space: Space,
    /// True for stores and atomics.
    pub is_store: bool,
    /// Unique 128-byte line addresses touched by the active lanes, i.e. the
    /// coalesced requests the access generates (paper Figure 5: "one memory
    /// request for each unique cache line accessed by the warp").
    /// Empty for shared-memory accesses and fully-predicated-off accesses.
    pub lines: Vec<u64>,
}

impl MemRef {
    /// Unique 4 KB pages covered by the coalesced requests.
    pub fn pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self.lines.iter().map(|l| crate::page_of(*l)).collect();
        pages.sort_unstable();
        pages.dedup();
        pages
    }
}

/// One dynamic warp instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynInstr {
    /// Static PC this instance came from.
    pub pc: u32,
    /// Opcode (used for latency classes and operand-log sizing).
    pub op: Opcode,
    /// Backend unit servicing the instruction.
    pub unit: Unit,
    /// Destination scoreboard id, if the instruction writes a register.
    pub dst: Option<RegId>,
    /// Source scoreboard ids (deduplicated; includes guard/input predicates).
    pub srcs: [Option<RegId>; 4],
    /// Active lane mask at execution.
    pub active: u32,
    /// Memory behaviour, for loads/stores/atomics.
    pub mem: Option<MemRef>,
    /// Special handling class.
    pub kind: DynKind,
    /// True if executing this instruction raises an arithmetic exception
    /// (a division by zero on some active lane). The preemptible schemes
    /// extend to such exceptions exactly like page faults (Sections
    /// 3.1/3.2): squash, run the handler, replay.
    pub traps: bool,
}

impl DynInstr {
    /// Iterate over the present source ids.
    pub fn src_iter(&self) -> impl Iterator<Item = RegId> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// True if this is a global-memory access that can page fault.
    pub fn can_fault(&self) -> bool {
        matches!(&self.mem, Some(m) if m.space == Space::Global && !m.lines.is_empty())
    }

    /// Operand-log slots this instruction needs while in flight
    /// (Section 3.3: loads take one entry — the source address — while
    /// stores take two — source data and destination address).
    pub fn log_slots(&self) -> u32 {
        if !self.can_fault() {
            0
        } else if self.mem.as_ref().is_some_and(|m| m.is_store) {
            2
        } else {
            1
        }
    }
}

/// Trace of one warp: the dynamic instructions in issue (program) order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct WarpTrace {
    /// Dynamic instructions in program order.
    pub instrs: Vec<DynInstr>,
}

/// Trace of one thread block, flattened for the timing hot path.
///
/// All warps' dynamic instructions live in *one* contiguous array with a
/// fencepost table delimiting each warp's slice (warp `w` owns
/// `instrs[starts[w]..starts[w + 1]]`). The SM pipeline walks warps with
/// index-based cursors into this array every cycle, so the layout keeps
/// the walk on a single allocation instead of hopping nested `Vec`s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockTrace {
    /// Flattened block id within the grid.
    pub block_id: u32,
    /// Every warp's dynamic instructions, concatenated in warp order.
    instrs: Vec<DynInstr>,
    /// Fenceposts into `instrs`: `num_warps + 1` entries, first 0, last
    /// `instrs.len()`.
    starts: Vec<u32>,
}

impl BlockTrace {
    /// Flatten per-warp traces (warp 0 holds threads 0..32, etc.) into
    /// one contiguous block trace.
    pub fn new(block_id: u32, warps: Vec<WarpTrace>) -> Self {
        let total: usize = warps.iter().map(|w| w.instrs.len()).sum();
        let mut instrs = Vec::with_capacity(total);
        let mut starts = Vec::with_capacity(warps.len() + 1);
        starts.push(0u32);
        for w in warps {
            instrs.extend(w.instrs);
            starts.push(instrs.len() as u32);
        }
        BlockTrace { block_id, instrs, starts }
    }

    /// Number of warps in the block.
    pub fn num_warps(&self) -> u32 {
        (self.starts.len() - 1) as u32
    }

    /// Warp `w`'s dynamic instructions in program order.
    #[inline]
    pub fn warp(&self, w: u32) -> &[DynInstr] {
        let lo = self.starts[w as usize] as usize;
        let hi = self.starts[w as usize + 1] as usize;
        &self.instrs[lo..hi]
    }

    /// Per-warp instruction slices, in warp order.
    pub fn warps(&self) -> impl ExactSizeIterator<Item = &[DynInstr]> + '_ {
        self.starts.windows(2).map(|w| &self.instrs[w[0] as usize..w[1] as usize])
    }

    /// The whole block's instructions as one flat slice (warp order).
    pub fn instrs(&self) -> &[DynInstr] {
        &self.instrs
    }

    /// A copy of this block with every global-memory line address offset
    /// by `offset` — multi-tenant runs rebase each tenant's trace into a
    /// private address window so concurrent kernels cannot alias.
    pub fn rebased(&self, offset: u64) -> BlockTrace {
        let mut instrs = self.instrs.clone();
        for i in &mut instrs {
            if let Some(m) = &mut i.mem {
                if m.space == Space::Global {
                    for l in &mut m.lines {
                        *l += offset;
                    }
                }
            }
        }
        BlockTrace { block_id: self.block_id, instrs, starts: self.starts.clone() }
    }

    /// Total dynamic instructions across the block's warps.
    pub fn dyn_instrs(&self) -> u64 {
        self.instrs.len() as u64
    }
}

/// Trace of a whole kernel launch.
///
/// Traces are immutable once built by the functional simulator; the
/// touched-page set is memoized on first query (every timing run of an
/// all-resident launch asks for it).
#[derive(Debug, Clone)]
pub struct KernelTrace {
    /// Kernel name, for reporting.
    pub name: String,
    /// Per-block traces in block-id order.
    pub blocks: Vec<BlockTrace>,
    /// Threads per block (flattened).
    pub threads_per_block: u32,
    /// Warps per block.
    pub warps_per_block: u32,
    /// Registers per thread declared by the kernel (drives occupancy).
    pub regs_per_thread: u32,
    /// Shared memory bytes per block (drives occupancy).
    pub shared_bytes: u32,
    /// Memoized [`KernelTrace::touched_pages`] result (derived data, not
    /// part of the trace's identity).
    pages_cache: std::sync::OnceLock<Vec<u64>>,
    /// Memoized [`KernelTrace::arc_blocks`] result (derived data, not
    /// part of the trace's identity).
    arc_blocks_cache: std::sync::OnceLock<Vec<std::sync::Arc<BlockTrace>>>,
}

impl PartialEq for KernelTrace {
    fn eq(&self, other: &Self) -> bool {
        // The page cache is derived from the compared fields; ignore it.
        self.name == other.name
            && self.blocks == other.blocks
            && self.threads_per_block == other.threads_per_block
            && self.warps_per_block == other.warps_per_block
            && self.regs_per_thread == other.regs_per_thread
            && self.shared_bytes == other.shared_bytes
    }
}

impl Eq for KernelTrace {}

impl KernelTrace {
    /// A kernel trace over `blocks` with the given launch geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: String,
        blocks: Vec<BlockTrace>,
        threads_per_block: u32,
        warps_per_block: u32,
        regs_per_thread: u32,
        shared_bytes: u32,
    ) -> Self {
        KernelTrace {
            name,
            blocks,
            threads_per_block,
            warps_per_block,
            regs_per_thread,
            shared_bytes,
            pages_cache: std::sync::OnceLock::new(),
            arc_blocks_cache: std::sync::OnceLock::new(),
        }
    }

    /// Total dynamic instructions in the launch.
    pub fn dyn_instrs(&self) -> u64 {
        self.blocks.iter().map(|b| b.dyn_instrs()).sum()
    }

    /// Unique global-memory pages touched anywhere in the launch, computed
    /// once and cached (the trace is immutable after construction).
    pub fn touched_pages(&self) -> &[u64] {
        self.pages_cache.get_or_init(|| {
            let mut pages: Vec<u64> = self
                .blocks
                .iter()
                .flat_map(|b| b.instrs().iter())
                .filter_map(|i| i.mem.as_ref())
                .filter(|m| m.space == Space::Global)
                .flat_map(|m| m.lines.iter().map(|l| crate::page_of(*l)))
                .collect();
            pages.sort_unstable();
            pages.dedup();
            pages
        })
    }

    /// The block traces wrapped in `Arc`s, in block-id order, deep-copied
    /// once and cached. Every timing run of the kernel shares these
    /// handles instead of cloning the full instruction vectors per run —
    /// the dominant allocation cost of repeated sweeps over one trace.
    pub fn arc_blocks(&self) -> &[std::sync::Arc<BlockTrace>] {
        self.arc_blocks_cache
            .get_or_init(|| self.blocks.iter().cloned().map(std::sync::Arc::new).collect())
    }

    /// A copy of this launch with every global-memory address offset by
    /// `offset` (see [`BlockTrace::rebased`]). The copy memoizes its own
    /// touched-page and `Arc`-block caches.
    pub fn rebased(&self, offset: u64) -> KernelTrace {
        KernelTrace::new(
            self.name.clone(),
            self.blocks.iter().map(|b| b.rebased(offset)).collect(),
            self.threads_per_block,
            self.warps_per_block,
            self.regs_per_thread,
            self.shared_bytes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Width;
    use crate::reg::{Reg, RegId};

    fn mk_mem(op: Opcode, lines: Vec<u64>, is_store: bool, space: Space) -> DynInstr {
        DynInstr {
            pc: 0,
            op,
            unit: Unit::LdSt,
            dst: Some(RegId::gpr(Reg(1))),
            srcs: [Some(RegId::gpr(Reg(2))), None, None, None],
            active: crate::FULL_MASK,
            mem: Some(MemRef { space, is_store, lines }),
            kind: DynKind::Normal,
            traps: false,
        }
    }

    #[test]
    fn pages_dedup_lines() {
        let d = mk_mem(
            Opcode::Ld(Space::Global, Width::B4),
            vec![0, 128, 4096, 4096 + 128],
            false,
            Space::Global,
        );
        assert_eq!(d.mem.as_ref().unwrap().pages(), vec![0, 4096]);
    }

    #[test]
    fn fault_and_log_slot_classification() {
        let ld = mk_mem(Opcode::Ld(Space::Global, Width::B4), vec![0], false, Space::Global);
        assert!(ld.can_fault());
        assert_eq!(ld.log_slots(), 1);

        let st = mk_mem(Opcode::St(Space::Global, Width::B4), vec![0], true, Space::Global);
        assert_eq!(st.log_slots(), 2);

        let sh = mk_mem(Opcode::Ld(Space::Shared, Width::B4), vec![], false, Space::Shared);
        assert!(!sh.can_fault());
        assert_eq!(sh.log_slots(), 0);

        // A global access whose lanes are all predicated off generates no
        // requests and cannot fault.
        let off = mk_mem(Opcode::Ld(Space::Global, Width::B4), vec![], false, Space::Global);
        assert!(!off.can_fault());
    }

    #[test]
    fn kernel_trace_aggregates() {
        let d = mk_mem(Opcode::Ld(Space::Global, Width::B4), vec![8192], false, Space::Global);
        let kt = KernelTrace::new(
            "t".into(),
            vec![BlockTrace::new(0, vec![WarpTrace { instrs: vec![d] }])],
            32,
            1,
            16,
            0,
        );
        assert_eq!(kt.dyn_instrs(), 1);
        assert_eq!(kt.touched_pages(), vec![8192]);
        // The second query returns the memoized slice.
        assert_eq!(kt.touched_pages().as_ptr(), kt.touched_pages().as_ptr());
    }

    #[test]
    fn block_trace_flattening_preserves_warp_slices() {
        let a = mk_mem(Opcode::Ld(Space::Global, Width::B4), vec![0], false, Space::Global);
        let b = mk_mem(Opcode::St(Space::Global, Width::B4), vec![128], true, Space::Global);
        let c = mk_mem(Opcode::Ld(Space::Global, Width::B4), vec![4096], false, Space::Global);
        let warps = vec![
            WarpTrace { instrs: vec![a.clone(), b.clone()] },
            WarpTrace { instrs: vec![] },
            WarpTrace { instrs: vec![c.clone()] },
        ];
        let bt = BlockTrace::new(7, warps);
        assert_eq!(bt.block_id, 7);
        assert_eq!(bt.num_warps(), 3);
        assert_eq!(bt.dyn_instrs(), 3);
        assert_eq!(bt.warp(0), &[a.clone(), b.clone()][..]);
        assert_eq!(bt.warp(1), &[][..]);
        assert_eq!(bt.warp(2), &[c.clone()][..]);
        let collected: Vec<_> = bt.warps().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[0], bt.warp(0));
        assert_eq!(collected[2], bt.warp(2));
        // The flat view is the concatenation in warp order.
        assert_eq!(bt.instrs(), &[a, b, c][..]);
    }
}
