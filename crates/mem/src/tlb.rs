//! TLB: a set-associative array of virtual page numbers with hit/miss
//! accounting.
//!
//! TLBs only cache *present* translations; a page that is resident on the
//! CPU or unbacked never enters a TLB, so fault detection always happens at
//! the page-table walker.

use crate::config::TlbConfig;
use crate::setassoc::SetAssoc;
use std::collections::BTreeMap;

/// One TLB level.
///
/// With a tenant shift configured (multi-tenant runs), hits and misses are
/// additionally attributed to the owning tenant — the tenant id lives in
/// the high bits of the virtual address, so for a virtual page number it
/// is `vpn >> (shift - 12)`.
#[derive(Debug, Clone)]
pub struct Tlb {
    tags: SetAssoc,
    hits: u64,
    misses: u64,
    tenant_shift: Option<u32>,
    per_tenant: BTreeMap<u32, (u64, u64)>,
}

impl Tlb {
    /// Build a TLB from its configuration.
    pub fn new(cfg: &TlbConfig) -> Self {
        Tlb {
            tags: SetAssoc::new(cfg.sets() as u64, cfg.ways),
            hits: 0,
            misses: 0,
            tenant_shift: None,
            per_tenant: BTreeMap::new(),
        }
    }

    /// Attribute future lookups to tenants: `shift` is the *address* shift
    /// (tenant = address >> shift), shared with the fault queue.
    pub fn set_tenant_shift(&mut self, shift: u32) {
        self.tenant_shift = Some(shift.saturating_sub(12));
    }

    /// Per-tenant `(hits, misses)`; zero unless a tenant shift is set.
    pub fn tenant_stats(&self, tenant: u32) -> (u64, u64) {
        self.per_tenant.get(&tenant).copied().unwrap_or((0, 0))
    }

    /// Look up `vpn`, updating LRU and counters.
    pub fn lookup(&mut self, vpn: u64) -> bool {
        let hit = self.tags.access(vpn);
        if let Some(s) = self.tenant_shift {
            let e = self.per_tenant.entry((vpn >> s) as u32).or_insert((0, 0));
            if hit {
                e.0 += 1;
            } else {
                e.1 += 1;
            }
        }
        if hit {
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Install a translation for `vpn`.
    pub fn fill(&mut self, vpn: u64) {
        self.tags.fill(vpn);
    }

    /// Drop the translation for `vpn`, if cached.
    pub fn invalidate(&mut self, vpn: u64) -> bool {
        self.tags.invalidate(vpn)
    }

    /// Lookup hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookup misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    #[test]
    fn miss_then_fill_then_hit() {
        let cfg = MemConfig::kepler_k20();
        let mut t = Tlb::new(&cfg.l1_tlb);
        assert!(!t.lookup(5));
        t.fill(5);
        assert!(t.lookup(5));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn l1_tlb_capacity_is_32() {
        let cfg = MemConfig::kepler_k20();
        let mut t = Tlb::new(&cfg.l1_tlb);
        // Fill 33 pages that all map across the 4 sets; 32 fit, 1 evicts.
        for vpn in 0..33u64 {
            t.fill(vpn);
        }
        let resident = (0..33u64).filter(|&v| t.lookup(v)).count();
        assert_eq!(resident, 32);
    }

    #[test]
    fn invalidate_forces_miss() {
        let cfg = MemConfig::kepler_k20();
        let mut t = Tlb::new(&cfg.l2_tlb);
        t.fill(9);
        assert!(t.invalidate(9));
        assert!(!t.lookup(9));
    }
}
