//! `tpacf` — two-point angular correlation function (Parboil).
//!
//! Each thread owns one galaxy and correlates it against a window of
//! others: a dot product, an angle-ish transform (`sqrt` in place of
//! `acos`) and binning by magnitude into a block-private shared-memory
//! histogram (as the real kernel does), merged into the global histogram
//! with one atomic per bin at the end. The doubly-nested loop with
//! per-pair binning is the suite's high-arithmetic + irregular-update
//! combination.

use crate::types::{BufferKind, BufferSpec, Preset, VaAlloc, Workload};
use gex_isa::asm::Asm;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{CmpKind, CmpType};
use gex_isa::reg::{Pred, Reg};
use gex_prng::Prng;

/// Histogram bins.
const BINS: u64 = 32;

/// Points correlated against per thread (the staged tile).
const TILE: u64 = 32;

fn points(preset: Preset) -> u64 {
    match preset {
        Preset::Test => 1024,
        Preset::Bench => 32 * 1024,
        Preset::Paper => 64 * 1024,
    }
}

/// Build the `tpacf` workload.
pub fn build(preset: Preset) -> Workload {
    let n = points(preset);
    let mut va = VaAlloc::new();
    let data = va.alloc(n * 8); // (x, y) angles per point
    let hist = va.alloc(BINS * 4);

    let mut a = Asm::new();
    let (tid, addr, x0, y0) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let (j, x1, y1, dot) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let (t, bin, one, old) = (Reg(8), Reg(9), Reg(10), Reg(11));
    let p = Pred(0);

    a.gtid(tid);
    a.shl_imm(addr, tid, 3);
    a.add(addr, addr, data);
    a.ld_global_u32(x0, addr, 0);
    a.ld_global_u32(y0, addr, 4);
    a.mov(one, 1u64);
    a.mov(j, 0u64);
    a.label("pairs");
    // partner index = (tid + j + 1) % n
    a.add(t, tid, j);
    a.add(t, t, 1u64);
    a.rem(t, t, n);
    a.shl_imm(addr, t, 3);
    a.add(addr, addr, data);
    a.ld_global_u32(x1, addr, 0);
    a.ld_global_u32(y1, addr, 4);
    // dot = x0*x1 + y0*y1 ; angle-ish = sqrt(1 - dot^2 + eps)
    a.fmul(dot, x0, x1);
    a.ffma(dot, y0, y1, dot);
    a.fmul(t, dot, dot);
    a.mov_f32(bin, 1.001);
    a.fsub(t, bin, t);
    a.fsqrt(t, t);
    // bin = clamp(f2i(t * BINS))
    a.mov_f32(bin, BINS as f32);
    a.fmul(t, t, bin);
    a.f2i(bin, t);
    a.min(bin, bin, BINS - 1);
    a.shl_imm(bin, bin, 2);
    // block-private histogram in shared memory
    a.ld_shared_u32(old, bin, 0);
    a.add(old, old, one);
    a.st_shared_u32(bin, old, 0);
    a.add(j, j, 1u64);
    a.setp(p, CmpKind::Lt, CmpType::U64, j, TILE);
    a.bra_if("pairs", p, true);
    // merge: the first BINS threads of the block each flush one bin
    a.bar();
    a.flat_tid(t);
    a.setp(p, CmpKind::Lt, CmpType::U64, t, BINS);
    a.if_begin(p, true);
    a.shl_imm(bin, t, 2);
    a.ld_shared_u32(old, bin, 0);
    a.add(bin, bin, hist);
    a.atom_add_u32(x1, bin, old);
    a.if_end();
    a.exit();

    let kernel = KernelBuilder::new("tpacf", a.assemble().expect("tpacf assembles"))
        .grid(Dim3::x((n / 128) as u32))
        .block(Dim3::x(128))
        .regs_per_thread(20)
        .shared_bytes((BINS * 4) as u32)
        .build()
        .expect("tpacf kernel");

    let mut image = MemImage::new();
    let mut rng = Prng::seed_from_u64(0x79ac);
    for i in 0..n {
        let theta: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        image.write_f32(data + i * 8, theta.cos());
        image.write_f32(data + i * 8 + 4, theta.sin());
    }

    Workload::build(
        "tpacf",
        &kernel,
        image,
        vec![
            BufferSpec { name: "points", addr: data, len: n * 8, kind: BufferKind::Input },
            BufferSpec { name: "hist", addr: hist, len: BINS * 4, kind: BufferKind::Output },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_private_update_per_pair_and_one_merge_per_bin() {
        let w = build(Preset::Test);
        let n = points(Preset::Test);
        // two shared accesses (read+write) per pair
        assert_eq!(w.func.shared_accesses * 32, 2 * n * TILE + BINS * (n / 128));
        // one warp-level merge atomic per block (32 bins = 1 warp)
        assert_eq!(w.func.atomics, n / 128);
    }

    #[test]
    fn pairs_loop_is_compute_heavy() {
        let w = build(Preset::Test);
        assert!(w.func.dyn_instrs > w.func.atomics * 100);
    }
}
