//! Property tests for the fill unit's pending-fault queue: under random
//! interleavings of reports, in-order pops, out-of-order pops, NACK
//! requeues and service completions, the queue's invariants hold.

use gex_mem::{region_of, FaultAdmission, FaultEntry, FaultKind, FaultQueue, REGION_BYTES};
use gex_testkit::prelude::*;

/// One random queue operation.
#[derive(Debug, Clone)]
enum Op {
    /// Report a fault on region index `r` (kind picked by `k`).
    Report(u8, u8),
    /// Pop the head for servicing.
    Pop,
    /// Pop the `n`-th matching entry (out-of-order service).
    PopNth(u8),
    /// NACK-requeue one entry currently being serviced.
    Nack,
    /// Complete service of one in-service region.
    Finish,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12, 0u8..3).prop_map(|(r, k)| Op::Report(r, k)),
        Just(Op::Pop),
        (0u8..8).prop_map(Op::PopNth),
        Just(Op::Nack),
        Just(Op::Finish),
    ]
}

fn kind(k: u8) -> FaultKind {
    match k {
        0 => FaultKind::Migration,
        1 => FaultKind::AllocOnly,
        _ => FaultKind::FirstTouch,
    }
}

/// Replays `ops` against a queue while checking every invariant after
/// every step. `serviced` models the handler side: entries popped but not
/// yet finished/NACKed.
fn run_ops(ops: &[Op]) -> (FaultQueue, u64) {
    let mut q = FaultQueue::new();
    let mut serviced: Vec<FaultEntry> = Vec::new();
    let mut reports: u64 = 0;
    for (step, op) in ops.iter().enumerate() {
        match op {
            Op::Report(r, k) => {
                let addr = *r as u64 * REGION_BYTES + (step as u64 % REGION_BYTES);
                let pos = q.report(addr, kind(*k), step as u32 % 16, step as u64);
                reports += 1;
                let region = region_of(addr);
                if q.in_service_regions().contains(&region) {
                    assert_eq!(pos, 0, "in-service reports merge at position 0");
                } else {
                    assert_eq!(
                        q.position(region),
                        Some(pos),
                        "reported position must match the entry's queue position"
                    );
                }
            }
            Op::Pop => {
                if let Some(e) = q.pop() {
                    serviced.push(e);
                }
            }
            Op::PopNth(n) => {
                if let Some(e) = q.pop_nth_where(*n as usize, |_| true) {
                    serviced.push(e);
                }
            }
            Op::Nack => {
                if let Some(e) = serviced.pop() {
                    let retries = e.retries;
                    q.requeue_nacked(e.clone());
                    let back = q.get(e.region).expect("nacked entry re-enqueued");
                    assert_eq!(back.retries, retries + 1, "retry count bumps on NACK");
                    assert_eq!(
                        q.position(e.region),
                        Some(q.len() as u32 - 1),
                        "nacked entries go to the back"
                    );
                }
            }
            Op::Finish => {
                if let Some(e) = serviced.pop() {
                    q.finish_service(e.region);
                }
            }
        }

        // Invariant: a region appears at most once across the pending
        // queue and the in-service set.
        let mut seen: Vec<u64> = q.iter().map(|e| e.region).collect();
        seen.extend_from_slice(q.in_service_regions());
        let total = seen.len();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), total, "region duplicated across queue/in-service");

        // Invariant: positions are FIFO-monotone — position(r) agrees
        // with iteration order for every pending region.
        for (i, e) in q.iter().enumerate() {
            assert_eq!(q.position(e.region), Some(i as u32));
        }

        // Invariant: the in-service set matches what the handler holds.
        let mut held: Vec<u64> = serviced.iter().map(|e| e.region).collect();
        held.sort_unstable();
        let mut marked = q.in_service_regions().to_vec();
        marked.sort_unstable();
        assert_eq!(held, marked, "in-service marks mirror popped entries");
    }
    (q, reports)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn queue_invariants_hold_under_random_interleavings(
        ops in collection::vec(op_strategy(), 1..60),
    ) {
        let (q, reports) = run_ops(&ops);
        // Accounting: every report either created an entry, merged, or
        // the entry was nacked back in. Merged + enqueued covers all
        // reports; nacks are counted separately.
        let merged_in_entries: u64 =
            q.iter().map(|e| e.merged as u64).sum();
        prop_assert!(q.total_enqueued() + q.total_merged() == reports,
            "every report is either a new entry or a merge");
        prop_assert!(merged_in_entries <= q.total_merged(),
            "pending merge counts cannot exceed the global merge total");
        prop_assert!(q.len() as u64 <= q.total_enqueued() + q.total_nacked());
    }

    #[test]
    fn merged_counts_sum_to_the_reports_on_a_region(
        dups in collection::vec(0u8..4, 1..24),
    ) {
        // All reports land on few regions: merged counts on each pending
        // entry must equal reports-on-that-region minus one.
        let mut q = FaultQueue::new();
        let mut per_region = [0u64; 4];
        for (i, r) in dups.iter().enumerate() {
            q.report(*r as u64 * REGION_BYTES, FaultKind::Migration, 0, i as u64);
            per_region[*r as usize] += 1;
        }
        for r in 0..4u64 {
            if per_region[r as usize] > 0 {
                let e = q.get(r * REGION_BYTES).expect("entry pending");
                prop_assert_eq!(e.merged as u64 + 1, per_region[r as usize]);
            }
        }
        let pending_plus_merged: u64 =
            q.len() as u64 + q.iter().map(|e| e.merged as u64).sum::<u64>();
        prop_assert_eq!(pending_plus_merged, dups.len() as u64);
    }
}

// ----------------------- Multi-tenant budget accounting (ISSUE 8)

/// Region-address shift for the budget properties: regions are 64 KB, so a
/// 20-bit shift gives every tenant a 1 MB window of 16 regions.
const SHIFT: u32 = 20;

/// An address inside tenant `t`'s window, region index `r`.
fn taddr(t: u32, r: u8) -> u64 {
    ((t as u64) << SHIFT) + r as u64 * REGION_BYTES
}

/// Owning tenant of a queue entry under [`SHIFT`].
fn owner(e: &FaultEntry) -> u32 {
    (e.region >> SHIFT) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A budget is charged only by its own tenant's fresh enqueues:
    /// merges are free, denial begins exactly at exhaustion, and a
    /// denied report never touches another tenant's counters.
    #[test]
    fn budgets_charge_only_the_owning_tenant(
        budget in 0u32..6,
        reports in collection::vec((0u32..3, 0u8..8), 1..60),
    ) {
        let mut q = FaultQueue::new();
        q.set_tenant_shift(SHIFT);
        q.set_budget(1, budget); // tenant 1 is noisy; 0 and 2 unlimited
        let mut charged = [0u64; 3];
        let mut denied = [0u64; 3];
        for (i, &(t, r)) in reports.iter().enumerate() {
            let remaining = q.remaining_budget(1);
            match q.try_report(taddr(t, r), FaultKind::Migration, 0, i as u64) {
                FaultAdmission::Denied => {
                    prop_assert_eq!(t, 1, "only the budgeted tenant can be denied");
                    prop_assert_eq!(remaining, Some(0), "denial must follow exhaustion");
                    denied[t as usize] += 1;
                }
                FaultAdmission::Enqueued(_) => charged[t as usize] += 1,
                FaultAdmission::Merged(_) => {}
            }
            for t in 0..3u32 {
                prop_assert_eq!(q.charged(t), charged[t as usize],
                    "fresh-enqueue charge drifted for tenant {}", t);
                prop_assert_eq!(q.denied(t), denied[t as usize],
                    "denial count drifted for tenant {}", t);
            }
        }
        // Conservation: what tenant 1 was charged plus what it has left
        // is exactly its grant, and its backlog never exceeds the charge.
        prop_assert_eq!(q.charged(1) + q.remaining_budget(1).unwrap() as u64, budget as u64);
        prop_assert!(q.iter().filter(|e| owner(e) == 1).count() as u64 <= q.charged(1));
        prop_assert_eq!(q.remaining_budget(0), None, "unbudgeted tenants stay unlimited");
    }

    /// A noisy tenant whose budget is exhausted leaves the victim's queue
    /// *byte-identical* to a run where the noisy tenant never existed:
    /// same admissions (hence the same position estimates the SMs see),
    /// same entries, same service order.
    #[test]
    fn denied_storms_leave_victim_service_order_unchanged(
        storm in collection::vec((any::<bool>(), 0u8..8), 1..80),
    ) {
        let mut shared = FaultQueue::new();
        shared.set_tenant_shift(SHIFT);
        shared.set_budget(1, 0); // the noisy tenant arrives pre-exhausted
        let mut alone = FaultQueue::new();
        alone.set_tenant_shift(SHIFT);
        for (i, &(noisy, r)) in storm.iter().enumerate() {
            if noisy {
                prop_assert_eq!(
                    shared.try_report(taddr(1, r), FaultKind::Migration, 1, i as u64),
                    FaultAdmission::Denied
                );
            } else {
                let s = shared.try_report(taddr(0, r), FaultKind::Migration, 0, i as u64);
                let a = alone.try_report(taddr(0, r), FaultKind::Migration, 0, i as u64);
                prop_assert_eq!(s, a, "victim admission diverged under the storm");
            }
        }
        let s: Vec<FaultEntry> = shared.iter().cloned().collect();
        let a: Vec<FaultEntry> = alone.iter().cloned().collect();
        prop_assert_eq!(s, a, "victim backlog diverged under the storm");
        loop {
            match (shared.pop(), alone.pop()) {
                (Some(x), Some(y)) => prop_assert_eq!(x, y, "service order diverged"),
                (None, None) => break,
                _ => prop_assert!(false, "queue lengths diverged"),
            }
        }
    }

    /// Quarantine's drain: `purge_tenant` removes exactly the noisy
    /// tenant's backlog and leaves the victim's entries — and their
    /// relative order — untouched.
    #[test]
    fn purge_removes_only_the_noisy_backlog(
        budget in 1u32..5,
        storm in collection::vec((any::<bool>(), 0u8..8), 1..80),
    ) {
        let mut q = FaultQueue::new();
        q.set_tenant_shift(SHIFT);
        q.set_budget(1, budget);
        for (i, &(noisy, r)) in storm.iter().enumerate() {
            let _ = q.try_report(taddr(u32::from(noisy), r), FaultKind::Migration, 0, i as u64);
        }
        let victim_before: Vec<FaultEntry> =
            q.iter().filter(|e| owner(e) == 0).cloned().collect();
        let noisy_before = q.iter().filter(|e| owner(e) == 1).count();
        let purged = q.purge_tenant(1);
        prop_assert_eq!(purged, noisy_before);
        prop_assert!(q.iter().all(|e| owner(e) != 1), "noisy entries survived the purge");
        let after: Vec<FaultEntry> = q.iter().cloned().collect();
        prop_assert_eq!(after, victim_before, "purge disturbed the victim's backlog");
    }
}
