//! SM configuration (the "SM:" section of Table 1 plus pipeline latencies).

use gex_isa::WARP_SIZE;

/// Architectural register width in bytes (the occupancy unit of the 256 KB
/// register file).
pub const REG_BYTES: u32 = 4;

/// Warp-scheduling policy of the issue stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerPolicy {
    /// Loose round-robin: rotate the starting warp every cycle (fair,
    /// spreads progress evenly).
    #[default]
    LooseRoundRobin,
    /// Greedy-then-oldest: keep issuing from the warp that issued last;
    /// when it stalls, fall back to the oldest ready warp (improves locality
    /// and latency hiding for unbalanced warps).
    GreedyThenOldest,
}

/// Static configuration of one streaming multiprocessor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmConfig {
    /// Maximum concurrent thread blocks (Table 1: 16).
    pub max_blocks: u32,
    /// Maximum concurrent warps (Table 1: 64).
    pub max_warps: u32,
    /// Register file bytes (Table 1: 256 KB).
    pub rf_bytes: u32,
    /// Shared memory bytes (Table 1: 32 KB).
    pub shared_bytes: u32,
    /// Instructions issued per cycle, from one or two warps (Table 1: 2).
    pub issue_width: u32,
    /// Per-warp instruction buffer entries.
    pub ibuffer_entries: u32,
    /// Instructions fetched per cycle for the selected warp.
    pub fetch_width: u32,
    /// Math (int/f32 ALU) units (Table 1: 2).
    pub math_units: u32,
    /// Special function units (Table 1: 1).
    pub sfu_units: u32,
    /// Load/store units (Table 1: 1).
    pub ldst_units: u32,
    /// Branch units (Table 1: 1).
    pub branch_units: u32,
    /// Math pipeline latency (issue of dependent instruction).
    pub alu_latency: u64,
    /// SFU latency.
    pub sfu_latency: u64,
    /// SFU initiation interval (32 lanes over a narrow unit).
    pub sfu_interval: u64,
    /// Branch/barrier/exit latency.
    pub branch_latency: u64,
    /// Shared-memory access latency.
    pub shared_latency: u64,
    /// Latency of the `malloc` intrinsic's SM-local bookkeeping.
    pub malloc_latency: u64,
    /// Per-warp control state saved on a context switch, in bytes
    /// (divergence stack, barrier state, program counters).
    pub warp_control_bytes: u32,
    /// Bytes of one replay-queue entry (a decoded instruction, no data).
    pub replay_entry_bytes: u32,
    /// Cycles the warp spends in the arithmetic-exception trap handler
    /// (the system-mode routine of Section 2.2).
    pub trap_handler_cycles: u64,
    /// Issue-stage warp scheduling policy.
    pub scheduler: SchedulerPolicy,
}

impl SmConfig {
    /// The Table 1 baseline SM.
    pub fn kepler_k20() -> Self {
        SmConfig {
            max_blocks: 16,
            max_warps: 64,
            rf_bytes: 256 * 1024,
            shared_bytes: 32 * 1024,
            issue_width: 2,
            ibuffer_entries: 2,
            fetch_width: 2,
            math_units: 2,
            sfu_units: 1,
            ldst_units: 1,
            branch_units: 1,
            alu_latency: 8,
            sfu_latency: 20,
            sfu_interval: 8,
            branch_latency: 4,
            shared_latency: 24,
            malloc_latency: 24,
            warp_control_bytes: 128,
            replay_entry_bytes: 16,
            trap_handler_cycles: 500,
            scheduler: SchedulerPolicy::LooseRoundRobin,
        }
    }

    /// Warps allowed by the register file for a kernel using
    /// `regs_per_thread` registers.
    pub fn warps_by_registers(&self, regs_per_thread: u32) -> u32 {
        let bytes_per_warp = regs_per_thread * WARP_SIZE as u32 * REG_BYTES;
        self.rf_bytes / bytes_per_warp.max(1)
    }

    /// Concurrent blocks of a kernel on this SM: the minimum over the block
    /// slots, warp slots, register file and shared memory limits — the same
    /// occupancy rule as CUDA hardware.
    pub fn blocks_per_sm(&self, warps_per_block: u32, regs_per_thread: u32, shared: u32) -> u32 {
        let by_slots = self.max_blocks;
        let by_warps = self.max_warps / warps_per_block.max(1);
        let by_regs = self.warps_by_registers(regs_per_thread) / warps_per_block.max(1);
        let by_shared = self.shared_bytes.checked_div(shared).unwrap_or(self.max_blocks);
        by_slots.min(by_warps).min(by_regs).min(by_shared)
    }
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig::kepler_k20()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_sm_values() {
        let c = SmConfig::kepler_k20();
        assert_eq!(c.max_blocks, 16);
        assert_eq!(c.max_warps, 64);
        assert_eq!(c.rf_bytes, 256 * 1024);
        assert_eq!(c.shared_bytes, 32 * 1024);
        assert_eq!(c.issue_width, 2);
        assert_eq!(c.math_units, 2);
        assert_eq!(c.sfu_units, 1);
        assert_eq!(c.ldst_units, 1);
        assert_eq!(c.branch_units, 1);
    }

    #[test]
    fn lbm_register_pressure_gives_8_warps() {
        // Section 5.2: 256 registers per thread -> 8 warps of occupancy.
        let c = SmConfig::kepler_k20();
        assert_eq!(c.warps_by_registers(256), 8);
        assert_eq!(c.warps_by_registers(32), 64);
    }

    #[test]
    fn occupancy_is_min_over_limits() {
        let c = SmConfig::kepler_k20();
        // 4 warps/block, light registers, no shared: warp-slot bound.
        assert_eq!(c.blocks_per_sm(4, 16, 0), 16);
        // 2 warps/block: block-slot bound (16 blocks max).
        assert_eq!(c.blocks_per_sm(2, 16, 0), 16);
        // heavy shared memory: 32KB/8KB = 4 blocks.
        assert_eq!(c.blocks_per_sm(4, 16, 8 * 1024), 4);
        // lbm-like: 4 warps/block at 256 regs -> 8 warps -> 2 blocks.
        assert_eq!(c.blocks_per_sm(4, 256, 0), 2);
    }
}
