//! `mri-q` — MRI reconstruction Q-matrix (Parboil).
//!
//! Each thread computes one image-space point, looping over all k-space
//! samples: a phase accumulation with `sin`/`cos` per sample. SFU-bound,
//! compute-dense, tiny working set with massive TLP — a kernel the schemes
//! barely touch (Section 5.2's "high level of TLP" group).

use crate::types::{BufferKind, BufferSpec, Preset, VaAlloc, Workload};
use gex_isa::asm::Asm;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::op::{CmpKind, CmpType};
use gex_isa::reg::{Pred, Reg};
use gex_prng::Prng;

fn config(preset: Preset) -> (u64, u64) {
    // (image points, k-space samples)
    match preset {
        Preset::Test => (1024, 16),
        Preset::Bench => (16 * 1024, 48),
        Preset::Paper => (32 * 1024, 96),
    }
}

/// Build the `mri-q` workload.
pub fn build(preset: Preset) -> Workload {
    let (points, ksamples) = config(preset);
    let mut va = VaAlloc::new();
    // per point: x coordinate; per sample: (kx, phi_mag) pairs
    let xs = va.alloc(points * 4);
    let kdata = va.alloc(ksamples * 8);
    let qr = va.alloc(points * 4);
    let qi = va.alloc(points * 4);

    let mut a = Asm::new();
    let (i, x, k, addr) = (Reg(0), Reg(1), Reg(2), Reg(3));
    let (kx, mag, phi, accr) = (Reg(4), Reg(5), Reg(6), Reg(7));
    let (acci, s, c, t) = (Reg(8), Reg(9), Reg(10), Reg(11));
    let p = Pred(0);

    a.gtid(i);
    a.shl_imm(addr, i, 2);
    a.add(addr, addr, xs);
    a.ld_global_u32(x, addr, 0);
    a.mov_f32(accr, 0.0);
    a.mov_f32(acci, 0.0);
    a.mov(k, 0u64);
    a.label("kloop");
    // load (kx, mag)
    a.shl_imm(addr, k, 3);
    a.add(addr, addr, kdata);
    a.ld_global_u32(kx, addr, 0);
    a.ld_global_u32(mag, addr, 4);
    // phi = kx * x; accr += mag*cos(phi); acci += mag*sin(phi)
    a.fmul(phi, kx, x);
    a.fcos(c, phi);
    a.fsin(s, phi);
    a.ffma(accr, mag, c, accr);
    a.ffma(acci, mag, s, acci);
    a.add(k, k, 1u64);
    a.setp(p, CmpKind::Lt, CmpType::U64, k, ksamples);
    a.bra_if("kloop", p, true);
    // store Qr/Qi
    a.shl_imm(addr, i, 2);
    a.add(t, addr, qr);
    a.st_global_u32(t, accr, 0);
    a.add(t, addr, qi);
    a.st_global_u32(t, acci, 0);
    a.exit();

    let kernel = KernelBuilder::new("mri-q", a.assemble().expect("mri-q assembles"))
        .grid(Dim3::x((points / 256) as u32))
        .block(Dim3::x(256))
        .regs_per_thread(20)
        .build()
        .expect("mri-q kernel");

    let mut image = MemImage::new();
    let mut rng = Prng::seed_from_u64(0x3219);
    for i in 0..points {
        image.write_f32(xs + i * 4, rng.gen_range(-1.0f32..1.0));
    }
    for s in 0..ksamples {
        image.write_f32(kdata + s * 8, rng.gen_range(-3.0f32..3.0));
        image.write_f32(kdata + s * 8 + 4, rng.gen_range(0.0f32..1.0));
    }

    Workload::build(
        "mri-q",
        &kernel,
        image,
        vec![
            BufferSpec { name: "x", addr: xs, len: points * 4, kind: BufferKind::Input },
            BufferSpec { name: "kdata", addr: kdata, len: ksamples * 8, kind: BufferKind::Input },
            BufferSpec { name: "Qr", addr: qr, len: points * 4, kind: BufferKind::Output },
            BufferSpec { name: "Qi", addr: qi, len: points * 4, kind: BufferKind::Output },
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gex_isa::op::{Opcode, Unit};

    #[test]
    fn sfu_heavy_mix() {
        let w = build(Preset::Test);
        let sfu = w.trace.blocks[0].warp(0).iter().filter(|d| d.unit == Unit::Sfu).count();
        let total = w.trace.blocks[0].warp(0).len();
        assert!(sfu * 8 > total, "sin/cos per sample: {sfu} SFU of {total}");
        assert!(w.trace.blocks[0].warp(0).iter().any(|d| d.op == Opcode::FSin));
    }

    #[test]
    fn high_tlp() {
        let w = build(Preset::Bench);
        // 64 blocks x 8 warps: plenty of warps for 16 SMs.
        assert!(w.trace.blocks.len() >= 64);
        assert_eq!(w.trace.warps_per_block, 8);
    }
}
