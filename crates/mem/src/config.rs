//! Memory-system configuration (Table 1 of the paper).

use crate::large::PageSizePolicy;

/// Simulation time in SM clock cycles (the baseline runs at 1 GHz, so one
/// cycle is one nanosecond).
pub type Cycle = u64;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes.
    pub line: u64,
    /// Access latency in cycles.
    pub latency: Cycle,
    /// Miss-status holding registers (outstanding misses).
    pub mshrs: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.bytes / (self.line * self.ways as u64)
    }
}

/// Geometry and timing of one TLB level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// Total entries.
    pub entries: u32,
    /// Associativity.
    pub ways: u32,
    /// Access latency in cycles (0 means "checked in the same cycle").
    pub latency: Cycle,
    /// Outstanding-miss registers (L2 TLB only in the baseline).
    pub mshrs: u32,
}

impl TlbConfig {
    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.entries / self.ways
    }
}

/// Full memory-system configuration. [`MemConfig::kepler_k20`] reproduces
/// Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemConfig {
    /// Number of SMs sharing the L2 (each gets a private L1 + L1 TLB).
    pub num_sms: u32,
    /// Per-SM L1 data cache.
    pub l1: CacheConfig,
    /// Shared L2 cache.
    pub l2: CacheConfig,
    /// Per-SM L1 TLB.
    pub l1_tlb: TlbConfig,
    /// Shared L2 TLB.
    pub l2_tlb: TlbConfig,
    /// Page-table walkers attached to the fill unit.
    pub num_walkers: u32,
    /// Latency of one page-table walk in cycles.
    pub walk_latency: Cycle,
    /// DRAM access latency in cycles.
    pub dram_latency: Cycle,
    /// DRAM bandwidth in bytes per cycle (256 GB/s at 1 GHz = 256 B/cycle).
    pub dram_bytes_per_cycle: u64,
    /// GPU physical memory in bytes (frames backing [`PhysAllocator`]).
    ///
    /// [`PhysAllocator`]: crate::phys::PhysAllocator
    pub gpu_mem_bytes: u64,
    /// Page-size policy: [`PageSizePolicy::Small`] reproduces the 4 KB-only
    /// simulator exactly; the other policies enable the 2 MB machinery in
    /// [`crate::large`].
    pub page_size: PageSizePolicy,
    /// Whether the background coalescer runs under
    /// [`PageSizePolicy::Transparent`]. With `false`, `Transparent` builds
    /// the large-page structures but never promotes, degrading to `Small`
    /// behaviour (the equivalence keystone exercises exactly this).
    pub coalesce: bool,
}

impl MemConfig {
    /// The Table 1 baseline: a Kepler K20-like memory system with 16 SMs.
    pub fn kepler_k20() -> Self {
        MemConfig {
            num_sms: 16,
            l1: CacheConfig {
                bytes: 32 * 1024,
                ways: 4,
                line: 128,
                latency: 40,
                mshrs: 32,
            },
            l2: CacheConfig {
                bytes: 2 * 1024 * 1024,
                ways: 8,
                line: 128,
                latency: 70,
                mshrs: 512,
            },
            l1_tlb: TlbConfig { entries: 32, ways: 8, latency: 1, mshrs: 0 },
            l2_tlb: TlbConfig { entries: 1024, ways: 8, latency: 70, mshrs: 128 },
            num_walkers: 64,
            walk_latency: 500,
            dram_latency: 200,
            dram_bytes_per_cycle: 256,
            gpu_mem_bytes: 4 * 1024 * 1024 * 1024,
            page_size: crate::large::default_page_size(),
            coalesce: true,
        }
    }

    /// Scale the configuration to `n` SMs, keeping per-SM structures fixed
    /// (Section 5.5's scalability discussion varies only the SM count).
    pub fn with_sms(mut self, n: u32) -> Self {
        self.num_sms = n;
        self
    }
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig::kepler_k20()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_values() {
        let c = MemConfig::kepler_k20();
        assert_eq!(c.num_sms, 16);
        assert_eq!(c.l1.bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.line, 128);
        assert_eq!(c.l1.latency, 40);
        assert_eq!(c.l1.mshrs, 32);
        assert_eq!(c.l2.bytes, 2 * 1024 * 1024);
        assert_eq!(c.l2.ways, 8);
        assert_eq!(c.l2.latency, 70);
        assert_eq!(c.l2.mshrs, 512);
        assert_eq!(c.l1_tlb.entries, 32);
        assert_eq!(c.l1_tlb.ways, 8);
        assert_eq!(c.l2_tlb.entries, 1024);
        assert_eq!(c.l2_tlb.mshrs, 128);
        assert_eq!(c.num_walkers, 64);
        assert_eq!(c.walk_latency, 500);
        assert_eq!(c.dram_latency, 200);
        assert_eq!(c.dram_bytes_per_cycle, 256);
    }

    #[test]
    fn derived_geometry() {
        let c = MemConfig::kepler_k20();
        assert_eq!(c.l1.sets(), 64); // 32KB / (128B * 4)
        assert_eq!(c.l2.sets(), 2048);
        assert_eq!(c.l1_tlb.sets(), 4);
        assert_eq!(c.l2_tlb.sets(), 128);
    }
}
