//! Supervised figure campaign: panic isolation, deadlines, retry with
//! budget escalation, quarantine and journal-backed resumption.
//!
//! Part 1 runs a Figure-10-style grid under the sweep supervisor with two
//! points deliberately injured (one panics, one is pinned to an
//! impossible cycle budget). The campaign completes anyway: healthy
//! points are untouched, the injured ones land in the quarantine report
//! written to `quarantine-report.txt`.
//!
//! Part 2 runs the real `fig10` campaign with a journal attached, then
//! runs it again to show resumption: the second pass answers every point
//! from the journal and re-simulates nothing, reproducing the same
//! figure bytes.
//!
//! ```text
//! cargo run --release -p gex --example supervised_campaign
//! ```

use gex::workloads::{suite, Preset};
use gex::{
    run_supervised, Gpu, GpuConfig, PagingMode, Residency, RunBudget, Scheme, SupervisePolicy,
    SweepOptions, Workload,
};

const SCHEMES: [Scheme; 4] =
    [Scheme::Baseline, Scheme::WdCommit, Scheme::WdLastCheck, Scheme::ReplayQueue];

fn run_point(w: &Workload, s: Scheme, budget: &RunBudget) -> Result<u64, gex::SimError> {
    Gpu::new(GpuConfig::kepler_k20().with_sms(2), s, PagingMode::AllResident)
        .budget(budget.clone())
        .try_run(&w.trace, &Residency::new())
        .map(|r| r.cycles)
}

fn main() {
    // ------------------------------------------------ Part 1: quarantine
    let ws: Vec<Workload> = suite::parboil(Preset::Test).into_iter().take(4).collect();
    let points: Vec<(String, (&Workload, Scheme))> = ws
        .iter()
        .flat_map(|w| SCHEMES.iter().map(move |&s| (format!("{}/{s:?}", w.name), (w, s))))
        .collect();
    let injured_panic = points[1].0.clone();
    let injured_slow = points[6].0.clone();
    println!("part 1: {} points, injuring {injured_panic} and {injured_slow}\n", points.len());

    // The injected panic is the whole point of the demo; keep its
    // backtrace off the terminal while the supervisor catches it.
    std::panic::set_hook(Box::new(|_| {}));
    let policy = SupervisePolicy::default();
    let out = run_supervised(points, &policy, None, |(w, s), budget| {
        let key = format!("{}/{s:?}", w.name);
        if key == injured_panic {
            panic!("injected panic for the demo");
        }
        let b = if key == injured_slow { RunBudget::cycles(64) } else { budget.clone() };
        run_point(w, *s, &b)
    });
    let _ = std::panic::take_hook();
    println!(
        "sweep finished: {} simulated, {} quarantined",
        out.simulated,
        out.quarantine.records.len()
    );
    // Stdout stays byte-identical across runs (the repo's determinism
    // probe): print every deterministic field and leave the wall-clock
    // `elapsed` to the report file.
    for r in &out.quarantine.records {
        println!("  {} [{}] after {} attempt(s): {}", r.key, r.kind, r.attempts, r.error);
    }
    std::fs::write("quarantine-report.txt", out.quarantine.to_string())
        .expect("write quarantine-report.txt");
    println!("wrote quarantine-report.txt\n");

    // ------------------------------------------------ Part 2: resumption
    let journal = std::env::temp_dir().join("gex-supervised-campaign.jsonl");
    let _ = std::fs::remove_file(&journal);
    let opts = SweepOptions { journal: Some(journal.clone()), ..SweepOptions::default() };

    println!("part 2: fig10 with a campaign journal at {}", journal.display());
    let first = gex::experiments::fig10_supervised(Preset::Test, 2, &opts);
    println!(
        "first pass:  {} simulated, {} resumed from journal",
        first.simulated, first.resumed
    );
    let second = gex::experiments::fig10_supervised(Preset::Test, 2, &opts);
    println!(
        "second pass: {} simulated, {} resumed from journal",
        second.simulated, second.resumed
    );
    assert_eq!(second.simulated, 0, "a complete journal answers every point");
    assert_eq!(
        first.fig.to_string(),
        second.fig.to_string(),
        "resumed figures are byte-identical"
    );
    println!("figures are byte-identical across the resume\n");
    print!("{}", second.fig);
    let _ = std::fs::remove_file(&journal);
}
