//! Forward-progress watchdog and structured run-abort errors.
//!
//! A wedged configuration — here, an injection schedule that NACKs every
//! fault service forever — must abort with a structured [`SimError`]
//! carrying per-warp and fault-queue diagnostics, never hang or panic.

use gex_isa::asm::Asm;
use gex_isa::func::FuncSim;
use gex_isa::kernel::{Dim3, KernelBuilder};
use gex_isa::mem_image::MemImage;
use gex_isa::reg::Reg;
use gex_isa::trace::KernelTrace;
use gex_sim::{
    Gpu, GpuConfig, InjectionPlan, Interconnect, PagingMode, Residency, SimError,
};
use gex_sm::Scheme;

const IN: u64 = 0x100_0000;

/// Every block loads from its own CPU-dirty 64 KB region: one migration
/// fault per block, so a handler that never resolves wedges the launch.
fn faulting_kernel(blocks: u32) -> (KernelTrace, Residency) {
    let mut a = Asm::new();
    let (tid, bid, addr, v) = (Reg(0), Reg(1), Reg(2), Reg(3));
    a.flat_tid(tid);
    a.flat_ctaid(bid);
    a.mul(addr, bid, 0x1_0000u64);
    a.add(addr, addr, IN);
    a.shl_imm(v, tid, 2);
    a.add(addr, addr, v);
    a.ld_global_u32(v, addr, 0);
    a.add(v, v, 1u64);
    a.st_global_u32(addr, v, 0);
    a.exit();
    let k = KernelBuilder::new("faulting", a.assemble().unwrap())
        .grid(Dim3::x(blocks))
        .block(Dim3::x(128))
        .regs_per_thread(16)
        .build()
        .unwrap();
    let mut img = MemImage::new();
    for b in 0..blocks as u64 {
        for t in 0..128u64 {
            img.write_u32(IN + b * 0x1_0000 + t * 4, (b + t) as u32);
        }
    }
    let trace = FuncSim::new().run(&k, &mut img).unwrap().trace;
    let res = Residency::new().cpu_dirty(IN, blocks as u64 * 0x1_0000);
    (trace, res)
}

fn demand_gpu(scheme: Scheme, cfg: GpuConfig) -> Gpu {
    Gpu::new(cfg, scheme, PagingMode::demand(Interconnect::nvlink()))
}

#[test]
fn wedged_nacks_trip_the_watchdog_with_diagnostics() {
    let (trace, res) = faulting_kernel(4);
    let cfg = GpuConfig::kepler_k20().with_sms(2).with_watchdog_cycles(300_000);
    let gpu = demand_gpu(Scheme::ReplayQueue, cfg).inject(InjectionPlan::wedge(3));
    let err = gpu.try_run(&trace, &res).expect_err("every service NACKs: must wedge");
    let SimError::Watchdog(d) = err else {
        panic!("expected a watchdog abort, got: {err}");
    };
    assert_eq!(d.window, 300_000);
    assert!(d.cycle >= d.last_progress + d.window);
    assert!(d.completed_blocks < d.total_blocks, "no block can finish");
    assert!(
        !d.stuck_warps().is_empty(),
        "warps waiting on never-resolving faults must show up as stuck"
    );
    let waiting: usize = d.stuck_warps().iter().map(|w| w.waiting_regions.len()).sum();
    assert!(waiting > 0, "stuck warps must name the regions they wait on");
    assert!(
        !d.fault_queue.is_empty() || !d.in_service.is_empty(),
        "the wedged fault must be visible in the queue snapshot"
    );
    // The rendered diagnostic is self-contained.
    let msg = SimError::Watchdog(d).to_string();
    assert!(msg.contains("no forward progress"), "{msg}");
    assert!(msg.contains("stuck warps"), "{msg}");
}

#[test]
fn stall_on_fault_baseline_also_gets_watchdog_coverage() {
    // The non-preemptible baseline stalls warps on faults instead of
    // squashing; a wedged handler must still be caught.
    let (trace, res) = faulting_kernel(2);
    let cfg = GpuConfig::kepler_k20().with_sms(2).with_watchdog_cycles(300_000);
    let gpu = demand_gpu(Scheme::Baseline, cfg).inject(InjectionPlan::wedge(5));
    match gpu.try_run(&trace, &res) {
        Err(SimError::Watchdog(d)) => {
            assert!(d.committed < trace.dyn_instrs());
        }
        other => panic!("expected watchdog, got {other:?}"),
    }
}

#[test]
fn cycle_cap_aborts_with_progress_counts() {
    let (trace, res) = faulting_kernel(4);
    // The first NVLink fault round trip takes ~12k cycles; capping below
    // that guarantees the limit fires first.
    let cfg = GpuConfig::kepler_k20().with_sms(2).with_max_cycles(10_000);
    let err = demand_gpu(Scheme::ReplayQueue, cfg)
        .try_run(&trace, &res)
        .expect_err("cap below the first resolution");
    match err {
        SimError::CycleLimit { limit, completed_blocks, total_blocks } => {
            assert_eq!(limit, 10_000);
            assert!(completed_blocks < total_blocks);
        }
        other => panic!("expected cycle limit, got {other:?}"),
    }
}

#[test]
fn healthy_runs_are_untouched_by_the_guards() {
    // A clean run under the default guards completes and reports per-warp
    // retirement adding up to the trace.
    let (trace, res) = faulting_kernel(4);
    let cfg = GpuConfig::kepler_k20().with_sms(2);
    let report = demand_gpu(Scheme::ReplayQueue, cfg)
        .try_run(&trace, &res)
        .expect("healthy run");
    assert_eq!(report.sm.committed, trace.dyn_instrs());
    let retired: u64 = report.warp_retired.values().sum();
    assert_eq!(retired, report.sm.committed);
    assert!(report.injection.is_none(), "no plan attached, no stats reported");
}

#[test]
fn duplicated_service_and_nack_backoff_on_one_warp_complete_under_the_watchdog() {
    // Every fault service is both issued twice (duplicate_prob 1.0) and
    // NACKed twice with exponential backoff before resolving, so the same
    // warp sits through duplicated completions *and* NACK retries in one
    // run. A tight (but fair) watchdog window stays armed throughout: the
    // backoff stalls must not read as a wedge, the duplicate resolutions
    // must not corrupt architectural state, and the run must finish.
    let (trace, res) = faulting_kernel(2);
    let plan = InjectionPlan {
        seed: 7,
        duplicate_prob: 1.0,
        nack_prob: 1.0,
        max_nacks_per_region: 2,
        nack_backoff: 1_500,
        ..InjectionPlan::none()
    };
    let cfg = GpuConfig::kepler_k20().with_sms(1).with_watchdog_cycles(200_000);
    let clean = demand_gpu(Scheme::ReplayQueue, cfg.clone()).run(&trace, &res);
    let report = demand_gpu(Scheme::ReplayQueue, cfg)
        .inject(plan)
        .try_run(&trace, &res)
        .expect("duplicate + bounded-NACK service must still finish");
    let inj = report.injection.expect("stats present");
    assert!(inj.duplicates > 0, "duplicated fault service must fire: {inj:?}");
    assert!(inj.nacks > 0, "NACK backoff must fire in the same run: {inj:?}");
    assert_eq!(report.sm.committed, trace.dyn_instrs());
    assert_eq!(
        report.warp_retired, clean.warp_retired,
        "perturbed timing must not change per-warp retirement"
    );
    assert!(
        report.cycles > clean.cycles,
        "duplicates + backoff must cost simulated time ({} vs {})",
        report.cycles,
        clean.cycles
    );
}

#[test]
fn wedged_duplicates_still_trip_the_watchdog() {
    // Duplicated services must not mask a wedge: with every resolution
    // NACKed forever, the extra duplicate round trips keep the fault
    // pipeline busy without ever making progress, and the watchdog must
    // still classify the launch as stuck rather than spin.
    let (trace, res) = faulting_kernel(2);
    let plan = InjectionPlan { duplicate_prob: 1.0, ..InjectionPlan::wedge(9) };
    let cfg = GpuConfig::kepler_k20().with_sms(2).with_watchdog_cycles(300_000);
    let err = demand_gpu(Scheme::ReplayQueue, cfg)
        .inject(plan)
        .try_run(&trace, &res)
        .expect_err("a wedge stays a wedge under duplication");
    let SimError::Watchdog(d) = err else {
        panic!("expected a watchdog abort, got: {err}");
    };
    assert!(d.completed_blocks < d.total_blocks);
    assert!(!d.stuck_warps().is_empty(), "the stuck warps must still be identified");
}

#[test]
fn bounded_nacks_recover_and_finish() {
    // With a finite NACK budget the run limps through retries, then
    // completes with full architectural results and nack accounting.
    let (trace, res) = faulting_kernel(4);
    let plan = InjectionPlan {
        seed: 11,
        nack_prob: 1.0,
        max_nacks_per_region: 2,
        nack_backoff: 2_000,
        ..InjectionPlan::none()
    };
    let cfg = GpuConfig::kepler_k20().with_sms(2);
    let clean = demand_gpu(Scheme::ReplayQueue, cfg.clone()).run(&trace, &res);
    let report = demand_gpu(Scheme::ReplayQueue, cfg)
        .inject(plan)
        .try_run(&trace, &res)
        .expect("bounded NACKs must still finish");
    assert_eq!(report.sm.committed, trace.dyn_instrs());
    assert_eq!(report.warp_retired, clean.warp_retired);
    let inj = report.injection.expect("stats present");
    assert!(inj.nacks > 0, "every region is NACKed twice before resolving");
    assert!(
        report.cycles > clean.cycles,
        "retry/backoff must cost simulated time ({} vs {})",
        report.cycles,
        clean.cycles
    );
}
