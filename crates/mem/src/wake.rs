//! Memoized wake-cycle publication for push-based idle scheduling.
//!
//! Under `NextEventMode::Push` (see `gex_sm::event_heap`), latency-bearing
//! components *push* their exact next wake cycle into a shared queue at
//! the moment they schedule work, instead of being re-polled per idle
//! window. [`WakeMemo`] is the small helper every pushing component uses
//! to avoid flooding the queue: it remembers the last value published and
//! yields a fresh value only when the component's `next_event_cycle()`
//! actually moved.
//!
//! Skipping the unchanged case is sound: components only ever schedule
//! *strictly-future* events and consume every due event when ticked, so a
//! component's minimum cannot be silently replaced by an equal value that
//! means a different (not yet published) event — if the minimum is
//! unchanged, the already-queued entry still covers it. Publishing a value
//! that later becomes stale is equally harmless: the wake queue pops
//! entries at or before `now` lazily.

use crate::config::Cycle;

/// Remembers the last published wake cycle of one component and yields
/// the current one only when it changed. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct WakeMemo {
    last: Option<Cycle>,
}

impl WakeMemo {
    /// A memo that has published nothing yet.
    pub fn new() -> Self {
        WakeMemo { last: None }
    }

    /// Publish `current` if it differs from the last published value.
    /// Returns the cycle to push into the wake queue, or `None` when the
    /// queue already covers this component's minimum.
    #[inline]
    pub fn update(&mut self, current: Option<Cycle>) -> Option<Cycle> {
        if current == self.last {
            None
        } else {
            self.last = current;
            current
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publishes_only_changes() {
        let mut m = WakeMemo::new();
        assert_eq!(m.update(Some(10)), Some(10));
        assert_eq!(m.update(Some(10)), None, "unchanged minimum stays quiet");
        assert_eq!(m.update(Some(7)), Some(7), "earlier minimum published");
        assert_eq!(m.update(None), None, "going quiet publishes nothing");
        assert_eq!(m.update(Some(7)), Some(7), "re-arming after quiet publishes again");
    }
}
