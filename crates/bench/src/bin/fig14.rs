//! Regenerate Figure 14: GPU-local handling of output-page faults.
//!
//! Runs under sweep supervision (`--deadline`, `--resume`, `--journal`);
//! each interconnect panel journals to its own file. Exits 2 if any point
//! was quarantined.

use gex::Interconnect;
use gex_bench::{sms_from_env, BenchArgs};

fn main() {
    let args = BenchArgs::parse();
    args.apply_max_cycles();
    args.apply_page_size();
    let preset = args.preset();
    let sms = sms_from_env();
    let mut healthy = true;
    for (panel, ic) in [("nvlink", Interconnect::nvlink()), ("pcie", Interconnect::pcie())] {
        let opts = args.sweep_options_panel("fig14", panel);
        let fig = gex::experiments::fig14_supervised(preset, sms, ic, &opts);
        println!("{fig}");
        healthy &= fig.quarantine.is_empty();
    }
    if !healthy {
        std::process::exit(2);
    }
}
