//! # gex-workloads — the benchmark suite
//!
//! Characteristic reimplementations of the paper's evaluation workloads in
//! the gex ISA: the eleven Parboil benchmarks (Section 5.1), four
//! Halloc-style dynamic-allocation benchmarks and the quad-tree CUDA sample
//! (Section 5.4). Each module documents which traits of the original it
//! preserves (occupancy, instruction mix, access pattern, divergence, load
//! imbalance) — the properties the paper's analysis leans on.
//!
//! Build one workload with its module's `build(preset)`, or whole suites
//! with [`suite::parboil`] and [`suite::halloc`] (which includes the
//! quad-tree sample).

#![warn(missing_docs)]

pub mod types;
pub mod suite;

pub mod bfs;
pub mod cutcp;
pub mod halloc;
pub mod histo;
pub mod lbm;
pub mod mri_gridding;
pub mod mri_q;
pub mod quadtree;
pub mod sad;
pub mod sgemm;
pub mod spmv;
pub mod stencil;
pub mod tpacf;

pub use types::{BufferKind, BufferSpec, Preset, VaAlloc, Workload};
