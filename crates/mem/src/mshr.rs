//! Miss-status holding registers.
//!
//! An [`MshrTable`] tracks outstanding misses keyed by line address (or
//! virtual page number, for the L2 TLB), merging secondary misses into the
//! primary entry. Capacity exhaustion is reported to the caller, which must
//! retry the request later — the structural stall that Table 1's "32 MSHRs"
//! / "512 MSHRs" limits create.

use std::collections::HashMap;

/// Outcome of [`MshrTable::allocate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAlloc {
    /// First miss on this key: the caller must send the fill request down
    /// the hierarchy.
    Primary,
    /// Merged into an existing entry: a fill is already in flight.
    Secondary,
    /// No free entry: retry later.
    Full,
}

/// A table of outstanding misses, each holding the opaque ids of the
/// requests waiting on it.
#[derive(Debug, Clone, Default)]
pub struct MshrTable {
    capacity: usize,
    entries: HashMap<u64, Vec<u64>>,
}

impl MshrTable {
    /// A table with room for `capacity` distinct outstanding keys.
    pub fn new(capacity: u32) -> Self {
        MshrTable { capacity: capacity as usize, entries: HashMap::new() }
    }

    /// Try to record a miss on `key` for `waiter`.
    pub fn allocate(&mut self, key: u64, waiter: u64) -> MshrAlloc {
        if let Some(e) = self.entries.get_mut(&key) {
            e.push(waiter);
            return MshrAlloc::Secondary;
        }
        if self.entries.len() >= self.capacity {
            return MshrAlloc::Full;
        }
        self.entries.insert(key, vec![waiter]);
        MshrAlloc::Primary
    }

    /// Complete the miss on `key`, returning every waiter that merged into
    /// it. Returns an empty vector if the key is unknown.
    pub fn complete(&mut self, key: u64) -> Vec<u64> {
        self.entries.remove(&key).unwrap_or_default()
    }

    /// True if a miss on `key` is outstanding.
    pub fn pending(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Outstanding distinct keys.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no misses are outstanding.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// True if every entry is in use.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_secondary_then_complete() {
        let mut m = MshrTable::new(2);
        assert_eq!(m.allocate(100, 1), MshrAlloc::Primary);
        assert_eq!(m.allocate(100, 2), MshrAlloc::Secondary);
        assert!(m.pending(100));
        assert_eq!(m.complete(100), vec![1, 2]);
        assert!(!m.pending(100));
        assert!(m.is_empty());
    }

    #[test]
    fn capacity_limits_distinct_keys_not_merges() {
        let mut m = MshrTable::new(1);
        assert_eq!(m.allocate(1, 10), MshrAlloc::Primary);
        assert_eq!(m.allocate(1, 11), MshrAlloc::Secondary); // merge ok
        assert_eq!(m.allocate(2, 12), MshrAlloc::Full); // new key rejected
        assert!(m.is_full());
        m.complete(1);
        assert_eq!(m.allocate(2, 12), MshrAlloc::Primary);
    }

    #[test]
    fn complete_unknown_is_empty() {
        let mut m = MshrTable::new(4);
        assert!(m.complete(7).is_empty());
    }
}
