//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::Strategy;
use gex_prng::Prng;
use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A size specification: an exact length or a half-open/inclusive range,
/// mirroring proptest's `Into<SizeRange>` arguments.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut Prng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}
impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}
impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// `Vec` strategy: `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Prng) -> Self::Value {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `BTreeSet` strategy: a set of `size` distinct elements.
///
/// If the element space is too small to reach the drawn size the set is
/// returned with as many distinct elements as a bounded number of draws
/// produced (proptest treats this the same way).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy { element, size: size.into() }
}

/// Strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut Prng) -> Self::Value {
        let n = self.size.pick(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < n && attempts < n.saturating_mul(64) + 64 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_exact_and_ranged_sizes() {
        let mut rng = Prng::seed_from_u64(1);
        let exact = vec(0u8..10, 16);
        assert_eq!(exact.generate(&mut rng).len(), 16);
        let ranged = vec(0u8..10, 1..4);
        for _ in 0..100 {
            let v = ranged.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
        let incl = vec(0u8..10, 2..=3);
        for _ in 0..50 {
            assert!((2..=3).contains(&incl.generate(&mut rng).len()));
        }
    }

    #[test]
    fn btree_set_sizes_and_distinctness() {
        let mut rng = Prng::seed_from_u64(2);
        let s = btree_set(0u64..512, 1..16);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!(!set.is_empty() && set.len() < 16);
        }
        // Element space smaller than requested size: saturates, no hang.
        let tiny = btree_set(0u64..3, 10);
        assert_eq!(tiny.generate(&mut rng).len(), 3);
    }
}
